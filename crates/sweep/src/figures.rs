//! The paper's figures (Section VI) as executable definitions.
//!
//! Every figure plots one Table I metric against the number of generated
//! tasks, with two series — **without partial configuration** (full) and
//! **with partial configuration** — at a fixed node count:
//!
//! | Figure | Metric | Nodes |
//! |---|---|---|
//! | 6a / 6b | Average wasted area per task | 100 / 200 |
//! | 7a / 7b | Average reconfiguration count per node | 100 / 200 |
//! | 8a / 8b | Average waiting time per task | 100 / 200 |
//! | 9a | Average scheduling steps per task | 200 |
//! | 9b | Total scheduler workload | 200 |
//! | 10 | Average configuration time per task | 200 |
//!
//! Because all figures read different metrics off the same runs, the
//! harness executes one [`ExperimentGrid`] — the cross product
//! (node count × mode × task count) — and extracts every figure from it.

use crate::runner::{run_batch, SweepPoint};
use dreamsim_engine::{Metrics, ReconfigMode, SearchBackend, SimParams};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One of the paper's evaluation figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Figure {
    Fig6a,
    Fig6b,
    Fig7a,
    Fig7b,
    Fig8a,
    Fig8b,
    Fig9a,
    Fig9b,
    Fig10,
}

impl Figure {
    /// Every figure, in paper order.
    pub const ALL: [Figure; 9] = [
        Figure::Fig6a,
        Figure::Fig6b,
        Figure::Fig7a,
        Figure::Fig7b,
        Figure::Fig8a,
        Figure::Fig8b,
        Figure::Fig9a,
        Figure::Fig9b,
        Figure::Fig10,
    ];

    /// Parse a figure id like `"6a"`, `"9b"`, `"10"`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Figure> {
        match s.trim().to_ascii_lowercase().as_str() {
            "6a" => Some(Figure::Fig6a),
            "6b" => Some(Figure::Fig6b),
            "7a" => Some(Figure::Fig7a),
            "7b" => Some(Figure::Fig7b),
            "8a" => Some(Figure::Fig8a),
            "8b" => Some(Figure::Fig8b),
            "9a" => Some(Figure::Fig9a),
            "9b" => Some(Figure::Fig9b),
            "10" => Some(Figure::Fig10),
            _ => None,
        }
    }

    /// Paper figure id ("6a" … "10").
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Figure::Fig6a => "6a",
            Figure::Fig6b => "6b",
            Figure::Fig7a => "7a",
            Figure::Fig7b => "7b",
            Figure::Fig8a => "8a",
            Figure::Fig8b => "8b",
            Figure::Fig9a => "9a",
            Figure::Fig9b => "9b",
            Figure::Fig10 => "10",
        }
    }

    /// Node count the figure fixes.
    #[must_use]
    pub fn node_count(self) -> usize {
        match self {
            Figure::Fig6a | Figure::Fig7a | Figure::Fig8a => 100,
            _ => 200,
        }
    }

    /// Human-readable metric name (the figure's y-axis).
    #[must_use]
    pub fn metric_name(self) -> &'static str {
        match self {
            Figure::Fig6a | Figure::Fig6b => "average wasted area per task",
            Figure::Fig7a | Figure::Fig7b => "average reconfiguration count per node",
            Figure::Fig8a | Figure::Fig8b => "average waiting time per task",
            Figure::Fig9a => "average scheduling steps per task",
            Figure::Fig9b => "total scheduler workload",
            Figure::Fig10 => "average configuration time per task",
        }
    }

    /// Extract the figure's metric from a run.
    #[must_use]
    pub fn extract(self, m: &Metrics) -> f64 {
        match self {
            Figure::Fig6a | Figure::Fig6b => m.avg_wasted_area_per_task,
            Figure::Fig7a | Figure::Fig7b => m.avg_reconfig_count_per_node,
            Figure::Fig8a | Figure::Fig8b => m.avg_waiting_time_per_task,
            Figure::Fig9a => m.avg_scheduling_steps_per_task,
            Figure::Fig9b => m.total_scheduler_workload as f64,
            Figure::Fig10 => m.avg_config_time_per_task,
        }
    }

    /// The direction the paper reports: does the partial-reconfiguration
    /// series sit **below** the full series on this figure?
    ///
    /// Partial wins (lower) on wasted area, waiting time, scheduling
    /// steps, and scheduler workload; it is **higher** on
    /// reconfiguration count and configuration time (more
    /// reconfigurations is the price of packing more tasks per node).
    #[must_use]
    pub fn partial_expected_lower(self) -> bool {
        !matches!(self, Figure::Fig7a | Figure::Fig7b | Figure::Fig10)
    }
}

impl std::fmt::Display for Figure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Figure {}", self.id())
    }
}

/// The two series of one figure across the task-count sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct FigureSeries {
    /// Which figure.
    pub figure: Figure,
    /// X axis: total tasks generated.
    pub task_counts: Vec<usize>,
    /// Without partial configuration.
    pub full: Vec<f64>,
    /// With partial configuration.
    pub partial: Vec<f64>,
}

impl FigureSeries {
    /// CSV with header, one row per task count.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("tasks,without_partial,with_partial\n");
        for ((&t, &f), &p) in self.task_counts.iter().zip(&self.full).zip(&self.partial) {
            let _ = writeln!(out, "{t},{f},{p}");
        }
        out
    }

    /// Fraction of sweep points where the partial series is on the side
    /// of the full series that the paper reports (1.0 = every point).
    #[must_use]
    pub fn agreement_with_paper(&self) -> f64 {
        if self.task_counts.is_empty() {
            return 1.0;
        }
        let lower = self.figure.partial_expected_lower();
        let ok = self
            .full
            .iter()
            .zip(&self.partial)
            .filter(|&(&f, &p)| if lower { p <= f } else { p >= f })
            .count();
        ok as f64 / self.task_counts.len() as f64
    }
}

/// Results of the full experiment grid: metrics per
/// (node count, mode, task count).
#[derive(Clone, Debug)]
pub struct ExperimentGrid {
    /// Task counts swept (ascending).
    pub task_counts: Vec<usize>,
    /// Base seed.
    pub seed: u64,
    results: BTreeMap<(usize, &'static str, usize), Metrics>,
}

impl ExperimentGrid {
    /// Run the grid: `node_counts × {full, partial} × task_counts`,
    /// on `threads` threads. Every cell runs the Table II defaults with
    /// a seed derived from `seed` so cells are independent but
    /// reproducible. Each cell picks its search backend automatically
    /// ([`SearchBackend::Auto`]): linear below the break-even node
    /// count, indexed above it — byte-equivalent either way, so the
    /// grid's metrics never depend on the choice.
    #[must_use]
    pub fn run(node_counts: &[usize], task_counts: &[usize], seed: u64, threads: usize) -> Self {
        Self::run_with_backend(node_counts, task_counts, seed, threads, SearchBackend::Auto)
    }

    /// [`run`](Self::run) with an explicit search backend. Backends are
    /// byte-equivalent (DESIGN.md §11), so the grid's metrics — and
    /// every figure extracted from them — are identical under both; the
    /// indexed backend only regenerates them faster. Pinned by the
    /// seed-golden figures test.
    #[must_use]
    pub fn run_with_backend(
        node_counts: &[usize],
        task_counts: &[usize],
        seed: u64,
        threads: usize,
        search: SearchBackend,
    ) -> Self {
        let cells = node_counts.len() * 2 * task_counts.len();
        let mut points = Vec::with_capacity(cells);
        let mut keys = Vec::with_capacity(cells);
        for &nodes in node_counts {
            for mode in [ReconfigMode::Full, ReconfigMode::Partial] {
                for &tasks in task_counts {
                    let mut params = SimParams::paper(nodes, tasks, mode);
                    // One seed per (nodes, tasks) cell, shared by both
                    // modes: the paper compares the two scenarios "for
                    // the same set of parameters in each simulation run".
                    params.seed =
                        dreamsim_rng::derive_stream(seed, (nodes as u64) << 32 | tasks as u64);
                    keys.push((nodes, mode.label(), tasks));
                    points.push(
                        SweepPoint::new(format!("n{nodes}-{}-t{tasks}", mode.label()), params)
                            .with_search(search),
                    );
                }
            }
        }
        let reports = run_batch(&points, threads);
        let results = keys
            .into_iter()
            .zip(reports.into_iter().map(|r| r.metrics))
            .collect();
        Self {
            task_counts: task_counts.to_vec(),
            seed,
            results,
        }
    }

    /// Metrics of one cell.
    #[must_use]
    pub fn cell(&self, nodes: usize, mode: ReconfigMode, tasks: usize) -> Option<&Metrics> {
        self.results.get(&(nodes, mode.label(), tasks))
    }

    /// Extract a figure's two series. Panics if the grid was not run
    /// with the figure's node count.
    #[must_use]
    pub fn figure(&self, fig: Figure) -> FigureSeries {
        let nodes = fig.node_count();
        let series = |mode: ReconfigMode| -> Vec<f64> {
            self.task_counts
                .iter()
                .map(|&t| {
                    let m = self
                        .cell(nodes, mode, t)
                        .unwrap_or_else(|| panic!("grid missing {nodes} nodes / {t} tasks"));
                    fig.extract(m)
                })
                .collect()
        };
        FigureSeries {
            figure: fig,
            task_counts: self.task_counts.clone(),
            full: series(ReconfigMode::Full),
            partial: series(ReconfigMode::Partial),
        }
    }

    /// All figures whose node count the grid covers.
    #[must_use]
    pub fn available_figures(&self, node_counts: &[usize]) -> Vec<Figure> {
        Figure::ALL
            .into_iter()
            .filter(|f| node_counts.contains(&f.node_count()))
            .collect()
    }

    /// Deterministic per-cell dump (one line per cell, key order) of
    /// the headline Table I metrics. Unlike
    /// [`figures_csv_bundle`](Self::figures_csv_bundle) this covers
    /// *every* cell, including node counts no paper figure fixes — the
    /// grid benchmark checksums it to certify that backends and thread
    /// counts all produced the same grid.
    #[must_use]
    pub fn cells_csv(&self) -> String {
        let mut out = String::from(
            "nodes,mode,tasks,avg_wait,avg_wasted_area,avg_reconfigs,steps,workload\n",
        );
        for (&(n, mode, t), m) in &self.results {
            let _ = writeln!(
                out,
                "{n},{mode},{t},{},{},{},{},{}",
                m.avg_waiting_time_per_task,
                m.avg_wasted_area_per_task,
                m.avg_reconfig_count_per_node,
                m.avg_scheduling_steps_per_task,
                m.total_scheduler_workload,
            );
        }
        out
    }

    /// Deterministic concatenation of every available figure's CSV
    /// (paper order, each prefixed by a `# figure <id>` line). One
    /// string summarizing the whole grid — what the thread-invariance
    /// tests and the CI `grid-parallel` job checksum.
    #[must_use]
    pub fn figures_csv_bundle(&self, node_counts: &[usize]) -> String {
        let mut out = String::new();
        for f in self.available_figures(node_counts) {
            let _ = writeln!(out, "# figure {}", f.id());
            out.push_str(&self.figure(f).to_csv());
        }
        out
    }
}

/// The paper sweeps 1 000 … 100 000 tasks; this returns a geometric
/// subsample capped at `max_tasks` (figure regeneration at full scale
/// takes minutes; scaled-down sweeps preserve the shapes).
#[must_use]
pub fn default_task_counts(max_tasks: usize) -> Vec<usize> {
    let ladder = [1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000];
    let v: Vec<usize> = ladder.into_iter().filter(|&t| t <= max_tasks).collect();
    if v.is_empty() {
        vec![max_tasks.max(1)]
    } else {
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_metadata_matches_paper() {
        assert_eq!(Figure::Fig6a.node_count(), 100);
        assert_eq!(Figure::Fig6b.node_count(), 200);
        assert_eq!(Figure::Fig9b.metric_name(), "total scheduler workload");
        assert!(Figure::Fig6a.partial_expected_lower());
        assert!(!Figure::Fig7a.partial_expected_lower());
        assert!(!Figure::Fig10.partial_expected_lower());
        assert!(Figure::Fig9a.partial_expected_lower());
        assert_eq!(Figure::ALL.len(), 9);
    }

    #[test]
    fn figure_parse_round_trips() {
        for f in Figure::ALL {
            assert_eq!(Figure::parse(f.id()), Some(f), "{f}");
        }
        assert_eq!(Figure::parse("11"), None);
        assert_eq!(Figure::parse(" 6A "), Some(Figure::Fig6a));
    }

    #[test]
    fn default_task_counts_respect_cap() {
        assert_eq!(default_task_counts(5_000), vec![1_000, 2_000, 5_000]);
        assert_eq!(default_task_counts(100_000).len(), 7);
        assert_eq!(default_task_counts(500), vec![500]);
    }

    #[test]
    fn small_grid_yields_all_200_node_figures() {
        let grid = ExperimentGrid::run(&[200], &[300, 600], 42, 0);
        let figs = grid.available_figures(&[200]);
        assert_eq!(figs.len(), 6, "six 200-node figures");
        for f in figs {
            let s = grid.figure(f);
            assert_eq!(s.task_counts, vec![300, 600]);
            assert_eq!(s.full.len(), 2);
            assert_eq!(s.partial.len(), 2);
            let csv = s.to_csv();
            assert!(csv.starts_with("tasks,"));
            assert_eq!(csv.lines().count(), 3);
        }
    }

    #[test]
    fn grid_cells_reproducible_across_runs() {
        let a = ExperimentGrid::run(&[100], &[200], 7, 2);
        let b = ExperimentGrid::run(&[100], &[200], 7, 1);
        assert_eq!(
            a.cell(100, ReconfigMode::Partial, 200),
            b.cell(100, ReconfigMode::Partial, 200)
        );
        assert_eq!(
            a.cell(100, ReconfigMode::Full, 200),
            b.cell(100, ReconfigMode::Full, 200)
        );
    }

    #[test]
    fn agreement_metric_counts_directions() {
        let s = FigureSeries {
            figure: Figure::Fig6a,
            task_counts: vec![1, 2, 3, 4],
            full: vec![10.0, 10.0, 10.0, 10.0],
            partial: vec![5.0, 5.0, 15.0, 5.0],
        };
        assert!((s.agreement_with_paper() - 0.75).abs() < 1e-12);
    }
}
