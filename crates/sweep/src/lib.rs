//! # dreamsim-sweep
//!
//! The experiment harness behind Section VI: deterministic, parallel
//! parameter sweeps and regeneration of every figure in the paper.
//!
//! * [`runner`] — run one simulation from a declarative [`SweepPoint`]
//!   (parameters + policy choice), or a whole batch across OS threads
//!   with order-independent, seed-deterministic results.
//! * [`figures`] — the paper's figure definitions (Fig. 6a–10): which
//!   node count, which Table I metric, and which direction the paper
//!   reports partial vs full reconfiguration to win. One
//!   [`ExperimentGrid`] run yields every figure, because the figures all
//!   read different metrics off the same (nodes × mode × tasks) runs.
//! * [`ablations`] — the DESIGN.md A1–A4 ablation harnesses (allocation
//!   strategy, data structures, suspension queue, driver equivalence).
//! * [`bench`] — the offline search-backend benchmark harness behind
//!   `dreamsim bench-search` and the `BENCH_search.json` baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod bench;
pub mod figures;
pub mod runner;

pub use bench::{run_search_bench, SearchBenchReport};
pub use figures::{ExperimentGrid, Figure, FigureSeries};
pub use runner::{replicate, run_batch, run_point, PolicyConfig, Replicated, SweepPoint};
