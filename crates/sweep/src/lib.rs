//! # dreamsim-sweep
//!
//! The experiment harness behind Section VI: deterministic, parallel
//! parameter sweeps and regeneration of every figure in the paper.
//!
//! * [`runner`] — run one simulation from a declarative [`SweepPoint`]
//!   (parameters + policy choice), or a whole batch across OS threads
//!   with order-independent, seed-deterministic results.
//! * [`figures`] — the paper's figure definitions (Fig. 6a–10): which
//!   node count, which Table I metric, and which direction the paper
//!   reports partial vs full reconfiguration to win. One
//!   [`ExperimentGrid`] run yields every figure, because the figures all
//!   read different metrics off the same (nodes × mode × tasks) runs.
//! * [`ablations`] — the DESIGN.md A1–A4 ablation harnesses (allocation
//!   strategy, data structures, suspension queue, driver equivalence).
//! * [`chaos`] — the chaos campaign harness behind `dreamsim chaos`
//!   (DESIGN.md §14): declarative failure-domain/overload scenarios run
//!   under continuous audit, each with a kill-and-resume drill.
//! * [`parallel`] — the deterministic hand-rolled worker pool behind
//!   `--jobs`: index-ordered merge, per-worker scratch arenas, LPT
//!   claim order (DESIGN.md §13).
//! * [`bench`] — the offline benchmark harnesses behind
//!   `dreamsim bench-search` / `dreamsim bench-grid` and the committed
//!   `BENCH_search.json` / `BENCH_grid.json` baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod bench;
pub mod chaos;
pub mod figures;
pub mod parallel;
pub mod runner;

pub use bench::{
    peak_rss_kb, run_grid_bench, run_scale_bench, run_search_bench, GridBenchReport,
    ScaleBenchReport, ScaleRung, SearchBenchReport,
};
pub use chaos::{
    parse_campaign, run_campaign, service_drill, CampaignCase, CampaignOptions, CampaignReport,
    ChaosError, ChaosScenario, DrillResult, ServiceDrillReport, BUILTIN_CAMPAIGN,
};
pub use figures::{ExperimentGrid, Figure, FigureSeries};
pub use parallel::{cost_descending_order, effective_jobs, run_indexed, run_ordered};
pub use runner::{
    replicate, run_batch, run_point, run_point_profiled, run_point_with_scratch, PolicyConfig,
    Replicated, SweepPoint,
};
