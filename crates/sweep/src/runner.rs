//! Declarative simulation runs and the parallel batch runner.
//!
//! Every run is fully described by a [`SweepPoint`] (parameters + policy
//! configuration); running it is a pure function of that description, so
//! batches can execute on any number of threads in any order and still
//! produce identical reports — pinned by the determinism tests.

use crate::parallel::{cost_descending_order, effective_jobs, run_ordered};
use dreamsim_engine::{
    EventQueueBackend, Report, RunOptions, SearchBackend, SimParams, SimScratch, Simulation,
    StatsBackend,
};
use dreamsim_sched::{AllocationStrategy, CaseStudyScheduler};
use dreamsim_workload::SyntheticSource;

/// Which scheduling policy a run uses (a value-level description, so
/// sweeps can be declared as data).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PolicyConfig {
    /// Allocation-phase strategy (paper: best fit).
    pub strategy: AllocationStrategy,
    /// Use naive full-scan searches instead of the idle/busy lists
    /// (ablation A2).
    pub naive_search: bool,
}

impl PolicyConfig {
    /// The paper-faithful configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self::default()
    }

    pub(crate) fn build(self) -> CaseStudyScheduler {
        CaseStudyScheduler::with_strategy(self.strategy).with_naive_search(self.naive_search)
    }
}

/// One point of a sweep: a label, full parameters, and the policy.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Free-form label carried into outputs.
    pub label: String,
    /// Simulation parameters.
    pub params: SimParams,
    /// Policy configuration.
    pub policy: PolicyConfig,
    /// Search backend the store uses. Backends are byte-equivalent
    /// (DESIGN.md §11), so this changes wall-clock speed only, never the
    /// report — which is why it lives outside [`SimParams`].
    pub search: SearchBackend,
    /// Event-queue backend. Byte-equivalent in reports *and*
    /// checkpoints (DESIGN.md §16); lives outside [`SimParams`] for the
    /// same reason as `search`.
    pub queue: EventQueueBackend,
    /// Waiting-time statistics backend. Byte-equivalent up to the
    /// sketch's exact window, error-bounded beyond (DESIGN.md §16).
    pub stats: StatsBackend,
}

impl SweepPoint {
    /// A paper-faithful point with the given label and parameters.
    ///
    /// The search backend defaults to [`SearchBackend::Auto`], which
    /// resolves to linear or indexed per point from its node count
    /// (DESIGN.md §11) — byte-equivalent either way, so only speed
    /// changes. Benchmarks that compare backends pass them explicitly
    /// via [`with_search`](Self::with_search).
    #[must_use]
    pub fn new(label: impl Into<String>, params: SimParams) -> Self {
        Self {
            label: label.into(),
            params,
            policy: PolicyConfig::paper(),
            search: SearchBackend::Auto,
            queue: EventQueueBackend::Heap,
            stats: StatsBackend::Exact,
        }
    }

    /// Builder-style policy override.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyConfig) -> Self {
        self.policy = policy;
        self
    }

    /// Builder-style search-backend override.
    #[must_use]
    pub fn with_search(mut self, search: SearchBackend) -> Self {
        self.search = search;
        self
    }

    /// Builder-style event-queue-backend override.
    #[must_use]
    pub fn with_queue(mut self, queue: EventQueueBackend) -> Self {
        self.queue = queue;
        self
    }

    /// Builder-style statistics-backend override.
    #[must_use]
    pub fn with_stats(mut self, stats: StatsBackend) -> Self {
        self.stats = stats;
        self
    }
}

/// Run a single point to completion (synthetic Table II workload).
///
/// # Panics
/// Panics if the parameters fail validation — sweep declarations are
/// programmer input, not user input.
#[must_use]
pub fn run_point(point: &SweepPoint) -> Report {
    run_point_with_scratch(point, &mut SimScratch::new())
}

/// [`run_point`], recycling a [`SimScratch`] arena so back-to-back
/// points on the same worker reuse the event heap, wait-sample, and
/// task-table allocations. The report is identical to [`run_point`]'s
/// (capacity is unobservable; pinned by engine and sweep tests).
///
/// # Panics
/// Same contract as [`run_point`].
#[must_use]
pub fn run_point_with_scratch(point: &SweepPoint, scratch: &mut SimScratch) -> Report {
    let source = SyntheticSource::from_params(&point.params);
    let sim =
        Simulation::new_with_scratch(point.params.clone(), source, point.policy.build(), scratch)
            // INVARIANT: sweep declarations are programmer input (documented
            // panic above), validated once per point.
            .expect("sweep point parameters must validate")
            .with_search_backend(point.search)
            .with_event_queue_backend(point.queue)
            .with_stats_backend(point.stats);
    let result = sim
        .run_with_scratch(&RunOptions::default(), scratch)
        // INVARIANT: RunError only arises from checkpoint I/O or a
        // failed audit; default options enable neither.
        .expect("a run without checkpoints or audits cannot fail");
    scratch.reclaim_tasks(result.tasks);
    result.report
}

/// [`run_point`], also returning the run's deterministic phase profile
/// (operation counters; see `dreamsim_engine::profile`). Same report,
/// same panics.
#[must_use]
pub fn run_point_profiled(point: &SweepPoint) -> (Report, dreamsim_engine::PhaseProfile) {
    let source = SyntheticSource::from_params(&point.params);
    let sim = Simulation::new(point.params.clone(), source, point.policy.build())
        // INVARIANT: sweep declarations are programmer input (documented
        // panic above), validated once per point.
        .expect("sweep point parameters must validate")
        .with_search_backend(point.search)
        .with_event_queue_backend(point.queue)
        .with_stats_backend(point.stats);
    let result = sim
        .run_with(&RunOptions::default())
        // INVARIANT: RunError only arises from checkpoint I/O or a
        // failed audit; default options enable neither.
        .expect("a run without checkpoints or audits cannot fail");
    (result.report, result.profile)
}

/// Run a batch across `jobs` OS threads (clamped to the batch size;
/// 0 selects the available parallelism) on the deterministic pool
/// ([`crate::parallel`]). Results are returned in input order and are
/// byte-identical for every thread count; workers claim the costliest
/// points first (LPT) to shrink the straggler tail, which affects
/// wall-clock only.
#[must_use]
pub fn run_batch(points: &[SweepPoint], jobs: usize) -> Vec<Report> {
    if points.is_empty() {
        return Vec::new();
    }
    let jobs = effective_jobs(jobs, points.len());
    let costs: Vec<u64> = points
        .iter()
        .map(|p| (p.params.total_tasks as u64).saturating_mul(p.params.total_nodes as u64))
        .collect();
    let order = cost_descending_order(&costs);
    run_ordered(&order, jobs, SimScratch::new, |scratch, i| {
        run_point_with_scratch(&points[i], scratch)
    })
}

/// Summary of one metric over seed replications.
#[derive(Clone, Debug, PartialEq)]
pub struct Replicated {
    /// Per-replica values, in replica order.
    pub samples: Vec<f64>,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for one replica).
    pub std_dev: f64,
    /// Half-width of the normal-approximation 95 % confidence interval
    /// (`1.96·σ/√n`).
    pub ci95_half_width: f64,
}

impl Replicated {
    fn from_samples(samples: Vec<f64>) -> Self {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n.max(1.0);
        let std_dev = if samples.len() > 1 {
            (samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0)).sqrt()
        } else {
            0.0
        };
        let ci95_half_width = if samples.len() > 1 {
            1.96 * std_dev / n.sqrt()
        } else {
            0.0
        };
        Self {
            samples,
            mean,
            std_dev,
            ci95_half_width,
        }
    }
}

/// Run `replicas` seed-replications of `point` (replica `r` uses the
/// seed stream `derive_stream(point.params.seed, r)`) across `threads`
/// threads, and summarize `metric` over them. Replication quantifies
/// how much of a figure's shape is seed noise — the paper reports
/// single runs.
#[must_use]
pub fn replicate(
    point: &SweepPoint,
    replicas: usize,
    threads: usize,
    metric: impl Fn(&dreamsim_engine::Metrics) -> f64,
) -> Replicated {
    let points: Vec<SweepPoint> = (0..replicas.max(1))
        .map(|r| {
            let mut p = point.clone();
            p.params.seed = dreamsim_rng::derive_stream(point.params.seed, r as u64);
            p.label = format!("{}#r{r}", point.label);
            p
        })
        .collect();
    let reports = run_batch(&points, threads);
    Replicated::from_samples(reports.iter().map(|r| metric(&r.metrics)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dreamsim_engine::ReconfigMode;

    fn small(seed: u64, mode: ReconfigMode) -> SweepPoint {
        let mut p = SimParams::paper(20, 200, mode);
        p.seed = seed;
        SweepPoint::new(format!("s{seed}"), p)
    }

    #[test]
    fn run_point_produces_consistent_report() {
        let r = run_point(&small(1, ReconfigMode::Partial));
        assert_eq!(r.metrics.total_tasks_generated, 200);
        assert_eq!(
            r.metrics.total_tasks_completed + r.metrics.total_discarded_tasks,
            200
        );
        assert_eq!(r.params.total_nodes, 20);
    }

    #[test]
    fn batch_results_preserve_input_order() {
        let points: Vec<SweepPoint> = (0..6).map(|i| small(i, ReconfigMode::Partial)).collect();
        let reports = run_batch(&points, 3);
        assert_eq!(reports.len(), 6);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.params.seed, i as u64, "order preserved");
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let points: Vec<SweepPoint> = (0..4).map(|i| small(100 + i, ReconfigMode::Full)).collect();
        let seq = run_batch(&points, 1);
        let par = run_batch(&points, 4);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn zero_threads_selects_hardware_parallelism() {
        let points = vec![small(7, ReconfigMode::Partial)];
        let reports = run_batch(&points, 0);
        assert_eq!(reports.len(), 1);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(run_batch(&[], 4).is_empty());
    }

    #[test]
    fn replication_summary_statistics() {
        let point = small(55, ReconfigMode::Partial);
        let rep = replicate(&point, 4, 0, |m| m.avg_waiting_time_per_task);
        assert_eq!(rep.samples.len(), 4);
        assert!(rep.mean > 0.0);
        assert!(rep.std_dev >= 0.0);
        assert!(rep.ci95_half_width >= 0.0);
        // Different replica seeds should not all coincide.
        let first = rep.samples[0];
        assert!(rep.samples.iter().any(|&s| (s - first).abs() > 1e-9));
        // Deterministic: same call, same summary.
        let rep2 = replicate(&point, 4, 2, |m| m.avg_waiting_time_per_task);
        assert_eq!(rep, rep2);
    }

    #[test]
    fn single_replica_has_zero_spread() {
        let point = small(56, ReconfigMode::Full);
        let rep = replicate(&point, 1, 1, |m| m.total_scheduler_workload as f64);
        assert_eq!(rep.samples.len(), 1);
        assert_eq!(rep.std_dev, 0.0);
        assert_eq!(rep.ci95_half_width, 0.0);
        assert_eq!(rep.mean, rep.samples[0]);
    }

    #[test]
    fn indexed_backend_point_reports_identically() {
        let point = small(9, ReconfigMode::Partial);
        let lin = run_point(&point);
        let idx = run_point(&point.clone().with_search(SearchBackend::Indexed));
        assert_eq!(lin.metrics, idx.metrics, "backends must be equivalent");
        assert_eq!(lin.to_xml(), idx.to_xml());
    }

    #[test]
    fn queue_and_stats_backend_points_report_identically() {
        let point = small(9, ReconfigMode::Partial);
        let base = run_point(&point);
        let cal = run_point(&point.clone().with_queue(EventQueueBackend::Calendar));
        assert_eq!(
            base.metrics, cal.metrics,
            "queue backends must be equivalent"
        );
        assert_eq!(base.to_xml(), cal.to_xml());
        // 200 placed tasks sit far below the sketch's exact window, so
        // the sketch report is byte-identical too.
        let sk = run_point(&point.clone().with_stats(StatsBackend::Sketch));
        assert_eq!(base.to_xml(), sk.to_xml());
        let both = run_point(
            &point
                .clone()
                .with_queue(EventQueueBackend::Calendar)
                .with_stats(StatsBackend::Sketch),
        );
        assert_eq!(base.to_xml(), both.to_xml());
    }

    #[test]
    fn policy_config_builds_requested_strategy() {
        let p = PolicyConfig {
            strategy: AllocationStrategy::WorstFit,
            naive_search: true,
        };
        let s = p.build();
        assert_eq!(s.strategy(), AllocationStrategy::WorstFit);
    }
}
