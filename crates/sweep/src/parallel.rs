//! Deterministic hand-rolled worker pool for sweep batches.
//!
//! The pool fans independent work items across `jobs` OS threads
//! (`std::thread::scope`, no external runtime) and merges results **in
//! item-index order**, so the merged output is byte-identical for any
//! thread count — the property the `-j1/-j2/-j8` invariance suite pins.
//!
//! ## Determinism argument (DESIGN.md §13)
//!
//! 1. Every item is a pure function of its own inputs: a sweep point
//!    carries its own derived seed, and the worker builds a fresh
//!    `Simulation` (own RNG, own store) per item. No state is shared
//!    between items except the per-worker scratch arena, whose buffer
//!    *capacity* is the only thing that survives an item — and capacity
//!    is unobservable in reports and checkpoint bytes (pinned by engine
//!    tests).
//! 2. Workers claim items from an atomic counter, so *which* worker
//!    runs an item and *when* is scheduling-dependent — but each result
//!    is written into the slot of its original index, and the merged
//!    vector is read out in ascending index order after every worker
//!    has joined. Claim order therefore affects wall-clock only.
//! 3. The claim order itself may be permuted (longest-item-first, see
//!    [`cost_descending_order`]) to shrink the straggler tail; the
//!    merge order never changes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a requested job count against the batch size and the
/// machine: `0` selects the available hardware parallelism, and the
/// result is clamped to `[1, work]`.
#[must_use]
pub fn effective_jobs(requested: usize, work: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let j = if requested == 0 { hw } else { requested };
    j.min(work).max(1)
}

/// Claim order visiting the highest-cost items first (LPT scheduling),
/// with ascending index as the tiebreak. Feeding this to
/// [`run_ordered`] shrinks the end-of-batch straggler tail; the merged
/// result order is unaffected by construction.
#[must_use]
pub fn cost_descending_order(costs: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    // TIEBREAK: the key includes the index, so equal costs keep their
    // ascending-index order and the permutation is fully deterministic.
    order.sort_unstable_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    order
}

/// Run `work(state, i)` for every index `i` in `order` (a permutation
/// of `0..order.len()`), fanned across `jobs` workers, and return the
/// results **indexed by `i` in ascending order** regardless of claim
/// order, worker assignment, or thread count.
///
/// Each worker owns one `state` built by `init` — a scratch arena,
/// typically — that is reused across every item the worker claims.
/// Results are buffered worker-locally and flushed into their slots
/// under a single mutex when the worker drains, so the lock is taken
/// once per worker, not once per item.
///
/// # Panics
/// Panics if `order` is not a permutation of `0..order.len()` (a slot
/// would be left unfilled or written twice), or if a worker panics.
pub fn run_ordered<S, T: Send>(
    order: &[usize],
    jobs: usize,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, usize) -> T + Sync,
) -> Vec<T> {
    let n = order.len();
    if n == 0 {
        return Vec::new();
    }
    let jobs = jobs.min(n).max(1);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    if jobs == 1 {
        // Serial fast path: same claim order, same merge order, no
        // threads — the baseline the invariance tests compare against.
        let mut state = init();
        for &i in order {
            assert!(slots[i].is_none(), "claim order visits index {i} twice");
            slots[i] = Some(work(&mut state, i));
        }
    } else {
        let next = AtomicUsize::new(0);
        let merged = Mutex::new(&mut slots);
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= n {
                            break;
                        }
                        let i = order[k];
                        local.push((i, work(&mut state, i)));
                    }
                    // INVARIANT: the mutex is poisoned only if a worker
                    // panicked, which already aborts the batch.
                    let slots = &mut *merged.lock().expect("pool worker panicked");
                    for (i, r) in local {
                        assert!(slots[i].is_none(), "claim order visits index {i} twice");
                        slots[i] = Some(r);
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        .enumerate()
        // INVARIANT: the counter hands out each position of `order`
        // exactly once and the scope joins every worker, so a hole
        // means `order` skipped that index — rejected above as a
        // non-permutation.
        .map(|(i, r)| r.unwrap_or_else(|| panic!("claim order never visits index {i}")))
        .collect()
}

/// [`run_ordered`] with the identity claim order `0..count`.
pub fn run_indexed<S, T: Send>(
    count: usize,
    jobs: usize,
    init: impl Fn() -> S + Sync,
    work: impl Fn(&mut S, usize) -> T + Sync,
) -> Vec<T> {
    let order: Vec<usize> = (0..count).collect();
    run_ordered(&order, jobs, init, work)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for jobs in [1, 2, 8] {
            let out = run_indexed(10, jobs, || (), |(), i| i * i);
            assert_eq!(out, (0..10).map(|i| i * i).collect::<Vec<_>>(), "-j{jobs}");
        }
    }

    #[test]
    fn permuted_claim_order_does_not_change_output() {
        let costs: Vec<u64> = vec![3, 9, 1, 9, 5, 0];
        let order = cost_descending_order(&costs);
        assert_eq!(order, vec![1, 3, 4, 0, 2, 5], "LPT with index tiebreak");
        for jobs in [1, 3] {
            let out = run_ordered(&order, jobs, || (), |(), i| costs[i]);
            assert_eq!(out, costs, "-j{jobs}");
        }
    }

    #[test]
    fn worker_state_is_reused_within_a_worker() {
        use std::sync::atomic::AtomicUsize;
        static INITS: AtomicUsize = AtomicUsize::new(0);
        let out = run_indexed(
            16,
            2,
            || {
                INITS.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |seen, i| {
                *seen += 1;
                i
            },
        );
        assert_eq!(out.len(), 16);
        assert!(
            INITS.load(Ordering::Relaxed) <= 2,
            "one arena per worker, not per item"
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let out: Vec<u32> = run_indexed(0, 4, || (), |(), _| 0);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "visits index 0 twice")]
    fn duplicate_claim_order_is_rejected() {
        let _ = run_ordered(&[0, 0, 1], 1, || (), |(), i| i);
    }

    #[test]
    fn effective_jobs_clamps_sensibly() {
        assert_eq!(effective_jobs(4, 2), 2, "no more workers than items");
        assert_eq!(effective_jobs(2, 100), 2);
        assert!(effective_jobs(0, 100) >= 1, "0 = hardware parallelism");
        assert_eq!(effective_jobs(1, 0).max(1), 1);
    }
}
