//! Chaos campaign harness (`dreamsim chaos`, DESIGN.md §14).
//!
//! A *campaign* is a list of declarative scenarios — correlated
//! failure-domain outages, overload bursts, bounded-queue admission
//! policies — each of which runs as an ordinary audited simulation.
//! The harness adds a *kill-and-resume drill* per scenario: the run is
//! repeated with periodic checkpoints, the live simulator is thrown
//! away, the earliest on-disk snapshot is resumed, and the resumed
//! run's final XML report must be byte-identical to the uninterrupted
//! baseline. A drill that does not reconverge is a hard error, not a
//! report footnote.
//!
//! ## Scenario script format
//!
//! Line-oriented; `#` starts a comment, blank lines separate nothing.
//! Every scenario opens with `scenario <name>`; the directives that
//! follow apply to it until the next `scenario` line:
//!
//! ```text
//! scenario rack-outage
//! nodes 40                   # cluster size          (default 40)
//! tasks 400                  # workload size         (default 400)
//! seed 11                    # master seed           (default 42)
//! domains 4                  # enable failure domains
//! domain-mttf 3000           # stochastic outages (omit for scripted-only)
//! domain-mttr 400            # mean repair time      (default 500)
//! domain-kind fail           # fail | partition
//! outage 0 500 800           # scripted: domain, start, duration
//! node-mttf 2000             # per-node failure processes
//! node-mttr 150
//! burst 0 4000 2             # overload window: start, end, interval
//! suspension-cap 32          # bounded suspension queue
//! admission shed-oldest      # block | shed-oldest | degrade-closest
//! suspension-deadline 2000   # shed parked tasks after this long
//! ```

use crate::runner::PolicyConfig;
use dreamsim_engine::{
    read_checkpoint, scan_ring, serve, AdmissionPolicy, ArrivalDistribution, BurstWindow,
    CheckpointError, DomainOutageKind, DomainParams, ReconfigMode, RunOptions, RunResult,
    ScriptedOutage, ServiceError, ServiceOptions, ServiceParams, SimParams, Simulation,
};
use dreamsim_model::Ticks;
use dreamsim_workload::{OpenSource, SyntheticSource};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Why a campaign could not be parsed or executed.
#[derive(Debug)]
pub enum ChaosError {
    /// A scenario script line did not parse.
    Parse {
        /// 1-based line number in the script.
        line: usize,
        /// What was wrong.
        detail: String,
    },
    /// A simulation inside the campaign failed (invalid parameters, a
    /// failed audit, or checkpoint I/O during the drill).
    Run(String),
    /// The drill checkpoint could not be read back.
    Checkpoint(CheckpointError),
    /// Filesystem failure in the campaign work directory.
    Io(std::io::Error),
    /// The kill-and-resume drill diverged from the baseline run — the
    /// one error this harness exists to catch.
    DrillMismatch {
        /// Scenario whose drill diverged.
        scenario: String,
        /// Simulation time of the resumed checkpoint.
        checkpoint_at: Ticks,
    },
}

impl std::fmt::Display for ChaosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::Parse { line, detail } => {
                write!(f, "scenario script line {line}: {detail}")
            }
            ChaosError::Run(msg) => write!(f, "campaign run failed: {msg}"),
            ChaosError::Checkpoint(e) => write!(f, "drill checkpoint unreadable: {e}"),
            ChaosError::Io(e) => write!(f, "campaign work dir I/O error: {e}"),
            ChaosError::DrillMismatch {
                scenario,
                checkpoint_at,
            } => write!(
                f,
                "kill-and-resume drill diverged in scenario {scenario:?}: resume from \
                 t={checkpoint_at} did not reproduce the baseline report"
            ),
        }
    }
}

impl std::error::Error for ChaosError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChaosError::Checkpoint(e) => Some(e),
            ChaosError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ChaosError {
    fn from(e: std::io::Error) -> Self {
        ChaosError::Io(e)
    }
}

impl From<CheckpointError> for ChaosError {
    fn from(e: CheckpointError) -> Self {
        ChaosError::Checkpoint(e)
    }
}

/// One declarative chaos scenario (see the module docs for the script
/// syntax it parses from).
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosScenario {
    /// Scenario name, carried into reports and drill directories.
    pub name: String,
    /// Cluster size.
    pub nodes: usize,
    /// Workload size.
    pub tasks: usize,
    /// Master seed.
    pub seed: u64,
    /// Failure-domain configuration, if the scenario uses domains.
    pub domains: Option<DomainParams>,
    /// Per-node MTTF (independent of domains).
    pub node_mttf: Option<u64>,
    /// Per-node MTTR.
    pub node_mttr: Option<u64>,
    /// Overload burst window.
    pub burst: Option<BurstWindow>,
    /// Bounded suspension queue capacity.
    pub suspension_cap: Option<usize>,
    /// Admission policy enforced at that capacity.
    pub admission: AdmissionPolicy,
    /// Deadline after which parked tasks are shed.
    pub suspension_deadline: Option<u64>,
}

impl ChaosScenario {
    fn named(name: &str) -> Self {
        Self {
            name: name.to_string(),
            nodes: 40,
            tasks: 400,
            seed: 42,
            domains: None,
            node_mttf: None,
            node_mttr: None,
            burst: None,
            suspension_cap: None,
            admission: AdmissionPolicy::Block,
            suspension_deadline: None,
        }
    }

    /// Assemble full simulation parameters (paper defaults plus this
    /// scenario's chaos overrides).
    #[must_use]
    pub fn params(&self) -> SimParams {
        let mut p = SimParams::paper(self.nodes, self.tasks, ReconfigMode::Partial);
        p.seed = self.seed;
        p.domains = self.domains.clone();
        p.suspension_cap = self.suspension_cap;
        p.admission = self.admission;
        p.burst = self.burst;
        p.faults.node_mttf = self.node_mttf;
        if let Some(r) = self.node_mttr {
            p.faults.node_mttr = r;
        }
        p.faults.suspension_deadline = self.suspension_deadline;
        p
    }
}

fn parse_err(line: usize, detail: impl Into<String>) -> ChaosError {
    ChaosError::Parse {
        line,
        detail: detail.into(),
    }
}

fn num<T: std::str::FromStr>(line: usize, key: &str, word: &str) -> Result<T, ChaosError> {
    word.parse()
        .map_err(|_| parse_err(line, format!("`{key}` expects a number, got {word:?}")))
}

fn arity<'a>(
    line: usize,
    key: &str,
    args: &'a [&'a str],
    n: usize,
) -> Result<&'a [&'a str], ChaosError> {
    if args.len() == n {
        Ok(args)
    } else {
        Err(parse_err(
            line,
            format!("`{key}` expects {n} argument(s), got {}", args.len()),
        ))
    }
}

/// Parse a campaign script into scenarios. Errors carry the offending
/// 1-based line number.
pub fn parse_campaign(text: &str) -> Result<Vec<ChaosScenario>, ChaosError> {
    let mut out: Vec<ChaosScenario> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let stripped = raw.split('#').next().unwrap_or("").trim();
        if stripped.is_empty() {
            continue;
        }
        let mut words = stripped.split_ascii_whitespace();
        // INVARIANT: stripped is non-empty, so a first word exists.
        let key = words.next().expect("non-empty line has a first word");
        let args: Vec<&str> = words.collect();
        if key == "scenario" {
            let a = arity(line, key, &args, 1)?;
            if out.iter().any(|s| s.name == a[0]) {
                return Err(parse_err(
                    line,
                    format!("duplicate scenario name {:?}", a[0]),
                ));
            }
            out.push(ChaosScenario::named(a[0]));
            continue;
        }
        let sc = out
            .last_mut()
            .ok_or_else(|| parse_err(line, format!("`{key}` before any `scenario` line")))?;
        match key {
            "nodes" => sc.nodes = num(line, key, arity(line, key, &args, 1)?[0])?,
            "tasks" => sc.tasks = num(line, key, arity(line, key, &args, 1)?[0])?,
            "seed" => sc.seed = num(line, key, arity(line, key, &args, 1)?[0])?,
            "domains" => {
                let count = num(line, key, arity(line, key, &args, 1)?[0])?;
                sc.domains = Some(DomainParams {
                    count,
                    ..DomainParams::default()
                });
            }
            "domain-mttf" | "domain-mttr" | "domain-kind" | "outage" => {
                let d = sc.domains.as_mut().ok_or_else(|| {
                    parse_err(line, format!("`{key}` requires a preceding `domains` line"))
                })?;
                match key {
                    "domain-mttf" => d.mttf = Some(num(line, key, arity(line, key, &args, 1)?[0])?),
                    "domain-mttr" => d.mttr = num(line, key, arity(line, key, &args, 1)?[0])?,
                    "domain-kind" => {
                        d.kind = match arity(line, key, &args, 1)?[0] {
                            "fail" => DomainOutageKind::Fail,
                            "partition" => DomainOutageKind::Partition,
                            other => {
                                return Err(parse_err(
                                    line,
                                    format!("`domain-kind` is fail|partition, got {other:?}"),
                                ))
                            }
                        }
                    }
                    _ => {
                        let a = arity(line, key, &args, 3)?;
                        let outage = ScriptedOutage {
                            domain: num(line, key, a[0])?,
                            at: num(line, key, a[1])?,
                            duration: num(line, key, a[2])?,
                        };
                        if outage.domain as usize >= d.count {
                            return Err(parse_err(
                                line,
                                format!(
                                    "outage targets domain {} but only {} domain(s) exist",
                                    outage.domain, d.count
                                ),
                            ));
                        }
                        d.scripted.push(outage);
                    }
                }
            }
            "node-mttf" => sc.node_mttf = Some(num(line, key, arity(line, key, &args, 1)?[0])?),
            "node-mttr" => sc.node_mttr = Some(num(line, key, arity(line, key, &args, 1)?[0])?),
            "burst" => {
                let a = arity(line, key, &args, 3)?;
                sc.burst = Some(BurstWindow {
                    start: num(line, key, a[0])?,
                    end: num(line, key, a[1])?,
                    interval: num(line, key, a[2])?,
                });
            }
            "suspension-cap" => {
                sc.suspension_cap = Some(num(line, key, arity(line, key, &args, 1)?[0])?);
            }
            "admission" => {
                let a = arity(line, key, &args, 1)?;
                sc.admission = AdmissionPolicy::parse(a[0]).ok_or_else(|| {
                    parse_err(
                        line,
                        format!(
                            "`admission` is block|shed-oldest|degrade-closest, got {:?}",
                            a[0]
                        ),
                    )
                })?;
            }
            "suspension-deadline" => {
                sc.suspension_deadline = Some(num(line, key, arity(line, key, &args, 1)?[0])?);
            }
            other => return Err(parse_err(line, format!("unknown directive `{other}`"))),
        }
    }
    Ok(out)
}

/// The built-in campaign behind `dreamsim chaos` with no script: one
/// scenario per chaos mechanism, sized to finish in seconds.
pub const BUILTIN_CAMPAIGN: &str = "\
# Built-in chaos campaign: one scenario per chaos mechanism.
scenario rack-outage          # scripted correlated failures
nodes 40
tasks 400
seed 11
domains 4
domain-mttr 400
domain-kind fail
outage 0 500 800
outage 2 1500 600

scenario partition-storm      # stochastic partitions with recovery
nodes 40
tasks 400
seed 12
domains 4
domain-mttf 3000
domain-mttr 300
domain-kind partition
suspension-deadline 1500

scenario overload-shed        # arrival burst against a bounded queue
nodes 24
tasks 600
seed 13
burst 0 4000 2
suspension-cap 32
admission shed-oldest
suspension-deadline 2000
";

/// Campaign execution knobs.
#[derive(Clone, Copy, Debug)]
pub struct CampaignOptions {
    /// Audit the full invariant set every this many ticks (continuous
    /// auditing is the point of a chaos campaign, so this defaults on).
    pub audit_every: Option<Ticks>,
    /// Run the kill-and-resume drill per scenario.
    pub drill: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        Self {
            audit_every: Some(500),
            drill: true,
        }
    }
}

/// Outcome of one kill-and-resume drill.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub struct DrillResult {
    /// Simulation time of the resumed snapshot.
    pub checkpoint_at: Ticks,
    /// Whether the resumed report matched the baseline byte-for-byte
    /// (always true in a returned report; a mismatch is an error).
    pub report_identical: bool,
}

/// Per-scenario campaign results: the availability/degradation metric
/// family plus the drill outcome.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct CampaignCase {
    /// Scenario name.
    pub name: String,
    /// Tasks completed.
    pub completed: u64,
    /// Tasks discarded for any reason.
    pub discarded: u64,
    /// Tasks shed by admission control or deadline.
    pub shed: u64,
    /// Tasks degraded to a larger configuration.
    pub degraded: u64,
    /// Tasks lost to faults.
    pub lost: u64,
    /// Correlated domain outages.
    pub domain_outages: u64,
    /// Domain restores.
    pub domain_restores: u64,
    /// Per-domain downtime in ticks.
    pub domain_downtime: Vec<Ticks>,
    /// Mean time-to-recover over closed outages.
    pub mean_time_to_recover: f64,
    /// Total simulated time.
    pub makespan: Ticks,
    /// Drill outcome (absent when drills are disabled).
    pub drill: Option<DrillResult>,
}

/// Full campaign output.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct CampaignReport {
    /// One entry per scenario, in script order.
    pub cases: Vec<CampaignCase>,
}

impl CampaignReport {
    /// CSV rendering (header + one row per scenario).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scenario,completed,discarded,shed,degraded,lost,domain_outages,\
             domain_restores,total_domain_downtime,mean_time_to_recover,makespan,\
             drill_checkpoint_at,drill_report_identical\n",
        );
        for c in &self.cases {
            let downtime: Ticks = c.domain_downtime.iter().sum();
            let (at, ok) = match c.drill {
                Some(d) => (d.checkpoint_at.to_string(), d.report_identical.to_string()),
                None => (String::new(), String::new()),
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{},{},{}",
                c.name,
                c.completed,
                c.discarded,
                c.shed,
                c.degraded,
                c.lost,
                c.domain_outages,
                c.domain_restores,
                downtime,
                c.mean_time_to_recover,
                c.makespan,
                at,
                ok,
            );
        }
        out
    }

    /// Pretty JSON rendering.
    #[must_use]
    pub fn to_json(&self) -> String {
        // INVARIANT: plain data with no maps or non-string keys;
        // serialization cannot fail.
        serde_json::to_string_pretty(self).expect("campaign report serializes")
    }
}

fn run_one(params: &SimParams, opts: &RunOptions) -> Result<RunResult, ChaosError> {
    let source = SyntheticSource::from_params(params);
    Simulation::new(params.clone(), source, PolicyConfig::paper().build())
        .map_err(|e| ChaosError::Run(e.to_string()))?
        .run_with(opts)
        .map_err(|e| ChaosError::Run(e.to_string()))
}

/// Run one scenario: audited baseline, then (optionally) the
/// kill-and-resume drill. `work_dir` holds the drill's checkpoints, in
/// a subdirectory named after the scenario.
pub fn run_scenario(
    sc: &ChaosScenario,
    opts: &CampaignOptions,
    work_dir: &Path,
) -> Result<CampaignCase, ChaosError> {
    let params = sc.params();
    params
        .validate()
        .map_err(|e| ChaosError::Run(format!("scenario {:?}: {e}", sc.name)))?;
    let run_opts = RunOptions {
        audit_every: opts.audit_every,
        ..RunOptions::default()
    };
    let base = run_one(&params, &run_opts)?;
    let m = base.report.metrics.clone();
    let drill = if opts.drill {
        Some(drill_scenario(sc, &params, &run_opts, &base, work_dir)?)
    } else {
        None
    };
    Ok(CampaignCase {
        name: sc.name.clone(),
        completed: m.total_tasks_completed,
        discarded: m.total_discarded_tasks,
        shed: m.tasks_shed,
        degraded: m.tasks_degraded,
        lost: m.tasks_lost,
        domain_outages: m.domain_outages,
        domain_restores: m.domain_restores,
        domain_downtime: m.domain_downtime.clone(),
        mean_time_to_recover: m.mean_time_to_recover,
        makespan: m.total_simulation_time,
        drill,
    })
}

/// The kill-and-resume drill: repeat the run with periodic checkpoints
/// (standing in for the process that gets killed), discard its live
/// result, resume the *earliest* on-disk snapshot, and demand the
/// resumed final report match the baseline byte-for-byte.
fn drill_scenario(
    sc: &ChaosScenario,
    params: &SimParams,
    run_opts: &RunOptions,
    base: &RunResult,
    work_dir: &Path,
) -> Result<DrillResult, ChaosError> {
    let dir = work_dir.join(&sc.name);
    std::fs::create_dir_all(&dir)?;
    let every = (base.report.metrics.total_simulation_time / 2).max(1);
    let kill_opts = RunOptions {
        checkpoint_every: Some(every),
        checkpoint_dir: Some(dir.clone()),
        ..run_opts.clone()
    };
    // The "killed" process: same run, but leaving snapshots behind. Its
    // in-memory result is discarded — only the files survive the kill.
    let _killed = run_one(params, &kill_opts)?;
    let mut snapshots: Vec<PathBuf> = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "dsc"))
        .collect();
    snapshots.sort();
    let first = snapshots.first().ok_or_else(|| {
        ChaosError::Run(format!(
            "drill for scenario {:?} produced no checkpoint",
            sc.name
        ))
    })?;
    let cp = read_checkpoint(first)?;
    let checkpoint_at = cp.clock();
    let source = SyntheticSource::from_params(cp.params());
    let resumed = Simulation::resume(cp, source, PolicyConfig::paper().build())?
        .run_with(run_opts)
        .map_err(|e| ChaosError::Run(e.to_string()))?;
    if resumed.report.to_xml() != base.report.to_xml() {
        return Err(ChaosError::DrillMismatch {
            scenario: sc.name.clone(),
            checkpoint_at,
        });
    }
    Ok(DrillResult {
        checkpoint_at,
        report_identical: true,
    })
}

/// Outcome of the kill-and-auto-recover *service* drill (the `serve`
/// counterpart of [`DrillResult`]).
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct ServiceDrillReport {
    /// Simulated clock at which the service was killed mid-window.
    pub killed_at: Ticks,
    /// Snapshot clock the straight recovery resumed from.
    pub recovered_clock: Option<Ticks>,
    /// Ring file deliberately corrupted for the fallback leg.
    pub corrupted_entry: String,
    /// Snapshot clock the fallback recovery resumed from (older than
    /// the corrupted entry).
    pub fallback_clock: Option<Ticks>,
    /// Snapshots the fallback recovery rejected (the corrupted one).
    pub fallback_rejected: u64,
    /// Both recovered windows matched the uninterrupted baseline report
    /// byte for byte (always true in a returned report; a mismatch is a
    /// [`ChaosError::DrillMismatch`]).
    pub report_identical: bool,
}

impl ServiceDrillReport {
    /// Pretty JSON for the CI artifact.
    #[must_use]
    pub fn to_json(&self) -> String {
        // INVARIANT: plain strings and integers; serialization cannot
        // fail.
        serde_json::to_string_pretty(self).expect("service drill report serializes")
    }
}

/// The service drill's fixed parameter set: an open-system window with
/// a diurnal curve, a composed burst, and sliding-window metrics — big
/// enough to cross several ring boundaries, small enough for CI.
fn service_drill_params() -> SimParams {
    let horizon = 6_000;
    let mut p = SimParams::paper(20, 0, ReconfigMode::Partial);
    p.seed = 20_260_807;
    p.arrival = ArrivalDistribution::Poisson;
    p.burst = Some(BurstWindow {
        start: 2_000,
        end: 3_000,
        interval: 2,
    });
    p.service = Some(ServiceParams {
        horizon,
        day_length: 2_000,
        amplitude_permille: 400,
        window: 1_000,
        window_retain: 4,
    });
    // Inter-arrival is at least one tick, so horizon + 1 tasks is a
    // true upper bound on arrivals inside the window: the source never
    // exhausts before the horizon.
    p.total_tasks = horizon as usize + 1;
    p
}

fn serve_drill_leg(
    params: &SimParams,
    ring_dir: PathBuf,
    stop_at: Option<Ticks>,
) -> Result<dreamsim_engine::ServiceOutcome, ChaosError> {
    let opts = ServiceOptions {
        ring_every: 1_000,
        audit_every: Some(500),
        stop_at,
        ..ServiceOptions::new(ring_dir)
    };
    serve(
        params,
        OpenSource::from_params,
        || PolicyConfig::paper().build(),
        &opts,
    )
    .map_err(|e: ServiceError| ChaosError::Run(e.to_string()))
}

fn copy_ring(from: &Path, to: &Path) -> Result<(), ChaosError> {
    std::fs::create_dir_all(to)?;
    for entry in scan_ring(from)? {
        // INVARIANT: scan_ring only yields well-formed checkpoint-*.dsc
        // names, which always have a final path component.
        let name = entry.path.file_name().expect("ring entry has a file name");
        std::fs::copy(&entry.path, to.join(name))?;
    }
    Ok(())
}

/// The kill-and-auto-recover service drill (`dreamsim serve`'s
/// counterpart of [`drill_scenario`], DESIGN.md §15):
///
/// 1. run the service window uninterrupted → baseline report;
/// 2. rerun it with the deterministic kill switch mid-window (no final
///    snapshot survives, exactly like a SIGKILL);
/// 3. auto-recover from the ring and drain: the final report must be
///    byte-identical to the baseline;
/// 4. corrupt the *newest* snapshot in a pristine copy of the killed
///    ring, recover again: recovery must fall back to the older
///    snapshot and still reproduce the baseline byte for byte.
pub fn service_drill(work_dir: &Path) -> Result<ServiceDrillReport, ChaosError> {
    let params = service_drill_params();
    let base_dir = work_dir.join("service-base");
    let crash_dir = work_dir.join("service-crash");
    let fallback_dir = work_dir.join("service-fallback");

    let base = serve_drill_leg(&params, base_dir, None)?;
    let base_xml = base
        .result
        .as_ref()
        .map(|r| r.report.to_xml())
        .ok_or_else(|| ChaosError::Run("baseline service produced no report".into()))?;

    let killed = serve_drill_leg(&params, crash_dir.clone(), Some(3_000))?;
    if !killed.killed || killed.result.is_some() {
        return Err(ChaosError::Run(
            "kill switch did not end the service mid-window".into(),
        ));
    }
    let killed_at = killed.final_clock;
    // Freeze the killed ring for the corruption leg before recovery
    // extends it.
    copy_ring(&crash_dir, &fallback_dir)?;

    // Leg 3: straight auto-recovery.
    let recovered = serve_drill_leg(&params, crash_dir, None)?;
    let recovered_xml = recovered
        .result
        .as_ref()
        .map(|r| r.report.to_xml())
        .ok_or_else(|| ChaosError::Run("recovered service produced no report".into()))?;
    if recovered_xml != base_xml {
        return Err(ChaosError::DrillMismatch {
            scenario: "service".to_string(),
            checkpoint_at: recovered.recovery.recovered_clock.unwrap_or(0),
        });
    }

    // Leg 4: corrupt the newest snapshot, recover past it.
    let entries = scan_ring(&fallback_dir)?;
    let newest = entries
        .last()
        .ok_or_else(|| ChaosError::Run("killed service left no ring snapshot".into()))?;
    let mut bytes = std::fs::read(&newest.path)?;
    let n = bytes.len();
    if n < 2 {
        return Err(ChaosError::Run("ring snapshot impossibly short".into()));
    }
    bytes[n - 2] ^= 0xFF;
    std::fs::write(&newest.path, &bytes)?;
    let corrupted_entry = newest
        .path
        .file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();

    let fallback = serve_drill_leg(&params, fallback_dir, None)?;
    let fallback_xml = fallback
        .result
        .as_ref()
        .map(|r| r.report.to_xml())
        .ok_or_else(|| ChaosError::Run("fallback service produced no report".into()))?;
    if fallback_xml != base_xml {
        return Err(ChaosError::DrillMismatch {
            scenario: "service-fallback".to_string(),
            checkpoint_at: fallback.recovery.recovered_clock.unwrap_or(0),
        });
    }
    if !fallback
        .recovery
        .rejected
        .iter()
        .any(|r| r.file == corrupted_entry)
    {
        return Err(ChaosError::Run(format!(
            "fallback recovery did not reject the corrupted snapshot {corrupted_entry:?}"
        )));
    }

    Ok(ServiceDrillReport {
        killed_at,
        recovered_clock: recovered.recovery.recovered_clock,
        corrupted_entry,
        fallback_clock: fallback.recovery.recovered_clock,
        fallback_rejected: fallback.recovery.rejected.len() as u64,
        report_identical: true,
    })
}

/// Run a whole campaign, scenario by scenario.
pub fn run_campaign(
    scenarios: &[ChaosScenario],
    opts: &CampaignOptions,
    work_dir: &Path,
) -> Result<CampaignReport, ChaosError> {
    let mut cases = Vec::with_capacity(scenarios.len());
    for sc in scenarios {
        cases.push(run_scenario(sc, opts, work_dir)?);
    }
    Ok(CampaignReport { cases })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dreamsim-chaos-{}-{}", tag, std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn builtin_campaign_parses() {
        let scs = parse_campaign(BUILTIN_CAMPAIGN).unwrap();
        assert_eq!(scs.len(), 3);
        assert_eq!(scs[0].name, "rack-outage");
        let d = scs[0].domains.as_ref().unwrap();
        assert_eq!(d.count, 4);
        assert_eq!(d.scripted.len(), 2);
        assert_eq!(d.kind, DomainOutageKind::Fail);
        assert_eq!(scs[1].domains.as_ref().unwrap().mttf, Some(3000));
        assert_eq!(
            scs[1].domains.as_ref().unwrap().kind,
            DomainOutageKind::Partition
        );
        assert_eq!(scs[2].suspension_cap, Some(32));
        assert_eq!(scs[2].admission, AdmissionPolicy::ShedOldest);
        assert!(scs[2].burst.is_some());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases = [
            ("nodes 10", 1, "before any `scenario`"),
            ("scenario a\nbogus 1", 2, "unknown directive"),
            ("scenario a\nnodes ten", 2, "expects a number"),
            ("scenario a\nnodes 1 2", 2, "expects 1 argument"),
            (
                "scenario a\noutage 0 1 2",
                2,
                "requires a preceding `domains`",
            ),
            ("scenario a\ndomains 2\noutage 5 1 2", 3, "only 2 domain(s)"),
            ("scenario a\ndomain-kind melt", 2, "before any"),
            ("scenario a\nadmission lru", 2, "admission"),
            ("scenario a\nscenario a", 2, "duplicate scenario"),
        ];
        for (text, line, needle) in cases {
            match parse_campaign(text) {
                Err(ChaosError::Parse { line: l, detail }) => {
                    assert_eq!(l, line, "line number for {text:?}");
                    assert!(
                        detail.contains(needle) || text.contains("domain-kind"),
                        "{text:?} -> {detail:?}"
                    );
                }
                other => panic!("{text:?} should fail to parse, got {other:?}"),
            }
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let scs = parse_campaign("# header\n\nscenario x # trailing\n  nodes 8  # note\n").unwrap();
        assert_eq!(scs.len(), 1);
        assert_eq!(scs[0].nodes, 8);
    }

    #[test]
    fn scenario_defaults_are_chaos_free() {
        let scs = parse_campaign("scenario plain\n").unwrap();
        let p = scs[0].params();
        assert!(p.domains.is_none());
        assert!(p.burst.is_none());
        assert!(p.suspension_cap.is_none());
        p.validate().unwrap();
    }

    #[test]
    fn campaign_runs_with_drill_and_reports() {
        // One small scripted-outage scenario, full drill.
        let scs = parse_campaign(
            "scenario mini\nnodes 16\ntasks 120\nseed 5\ndomains 2\n\
             domain-mttr 200\noutage 0 300 400\n",
        )
        .unwrap();
        let dir = temp_dir("drill");
        let report = run_campaign(&scs, &CampaignOptions::default(), &dir).unwrap();
        assert_eq!(report.cases.len(), 1);
        let c = &report.cases[0];
        assert_eq!(c.name, "mini");
        assert_eq!(c.domain_outages, 1);
        assert_eq!(c.domain_restores, 1);
        assert_eq!(c.domain_downtime, vec![400, 0]);
        assert_eq!(c.completed + c.discarded, 120);
        let d = c.drill.expect("drill ran");
        assert!(d.report_identical);
        assert!(d.checkpoint_at > 0 && d.checkpoint_at < c.makespan);
        // Renderings cover the case.
        let csv = report.to_csv();
        assert!(csv.starts_with("scenario,"));
        assert!(csv.contains("mini,"), "{csv}");
        let json = report.to_json();
        assert!(json.contains("\"mini\""), "{json}");
        assert!(json.contains("\"checkpoint_at\""), "{json}");
    }

    #[test]
    fn service_drill_recovers_byte_identically_even_past_corruption() {
        let dir = temp_dir("service");
        let report = service_drill(&dir).unwrap();
        assert!(report.report_identical);
        assert!(report.killed_at >= 3_000, "killed at {}", report.killed_at);
        let straight = report.recovered_clock.expect("straight recovery resumed");
        let fallback = report.fallback_clock.expect("fallback recovery resumed");
        assert!(
            fallback < straight,
            "fallback resumed from {fallback}, straight from {straight}: \
             corrupting the newest snapshot must push recovery further back"
        );
        assert_eq!(report.fallback_rejected, 1);
        assert!(report.corrupted_entry.starts_with("checkpoint-"));
        let json = report.to_json();
        assert!(json.contains("\"corrupted_entry\""), "{json}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn campaign_without_drill_skips_checkpoints() {
        let scs = parse_campaign("scenario dry\nnodes 12\ntasks 80\n").unwrap();
        let dir = temp_dir("nodrill");
        let opts = CampaignOptions {
            drill: false,
            ..CampaignOptions::default()
        };
        let report = run_campaign(&scs, &opts, &dir).unwrap();
        assert!(report.cases[0].drill.is_none());
        assert!(
            !dir.join("dry").exists(),
            "no drill directory without a drill"
        );
    }
}
