//! Offline search-backend benchmark harness (`dreamsim bench-search`).
//!
//! Measures the wall-clock effect of [`SearchBackend::Indexed`] against
//! the paper-faithful linear backend, in two modes:
//!
//! * **micro** — a populated store is hammered with a deterministic mix
//!   of placement searches (`find_closest_config`, `find_best_blank`,
//!   `find_best_partially_blank`, `find_best_idle`, `find_worst_idle`);
//!   this isolates *scheduler-search time*, the quantity the indexed
//!   backend targets;
//! * **end-to-end** — full simulation runs over the bench grid
//!   (node ladder × task ladder), where search is only one slice of the
//!   event loop, so speedups are diluted but reports can be checked
//!   byte-identical across backends in the same breath.
//!
//! Every measurement takes the minimum of several repetitions (minimum,
//! not mean: noise on a deterministic workload is strictly additive),
//! and both backends' search results are folded into checksums that
//! must agree — a benchmark that silently compared different answers
//! would be meaningless.
//!
//! The harness is dependency-free (`std::time::Instant` only) so it
//! runs in offline builds; the Criterion target in `crates/bench`
//! (`search_backends.rs`) wraps these same helpers for statistically
//! rigorous numbers when the registry is reachable. Results serialize
//! to the `BENCH_search.json` schema committed at the repo root.

use crate::figures::ExperimentGrid;
use crate::runner::{run_point, SweepPoint};
use dreamsim_engine::{ReconfigMode, SearchBackend, SimParams};
use dreamsim_model::{Config, ConfigId, Demand, Node, NodeId, ResourceManager, StepCounter};
use std::fmt::Write as _;
use std::time::Instant;

/// Repetitions per timed measurement; the minimum is reported.
const REPS: usize = 3;

/// Build a store with `num_nodes` nodes of varied area, a 16-entry
/// configuration list, and a mixed population of blank, partially
/// blank, and idle-instance-holding nodes — enough variety that every
/// search kind has real work to do.
#[must_use]
pub fn populated_store(num_nodes: usize, backend: SearchBackend) -> ResourceManager {
    let num_configs = 16usize;
    let configs: Vec<Config> = (0..num_configs)
        .map(|i| Config::new(ConfigId(i as u32), 100 + ((i as u64 * 211) % 900), 10))
        .collect();
    let nodes: Vec<Node> = (0..num_nodes)
        .map(|i| Node::new(NodeId::from_index(i), 500 + ((i as u64 * 307) % 2500), 2))
        .collect();
    let mut rm = ResourceManager::new(nodes, configs);
    rm.set_search_backend(backend);
    let mut sink = StepCounter::new();
    for i in 0..num_nodes {
        // Two thirds of the nodes hold an idle instance; a third of
        // those hold a second one. The rest stay blank.
        if i % 3 == 2 {
            continue;
        }
        let c = ConfigId((i % num_configs) as u32);
        let _ = rm.configure_slot(NodeId::from_index(i), c, &mut sink);
        if i % 3 == 0 {
            let c2 = ConfigId(((i + 7) % num_configs) as u32);
            let _ = rm.configure_slot(NodeId::from_index(i), c2, &mut sink);
        }
    }
    rm
}

/// Run `rounds` rounds of the deterministic search mix and fold every
/// answer (plus the charged step totals) into a checksum. Identical
/// across backends by construction — asserted by the callers.
#[must_use]
pub fn search_workout(rm: &ResourceManager, rounds: usize) -> u64 {
    let mut steps = StepCounter::new();
    let mut acc = 0u64;
    for r in 0..rounds {
        let area = 100 + ((r as u64 * 37) % 900);
        if let Some(c) = rm.find_closest_config(area, &mut steps) {
            acc = acc.wrapping_add(c.index() as u64 + 1);
        }
        if let Some(n) = rm.find_best_blank(Demand::area(area), &mut steps) {
            acc = acc.wrapping_add(n.index() as u64 + 1);
        }
        if let Some(n) = rm.find_best_partially_blank(Demand::area(area), &mut steps) {
            acc = acc.wrapping_add(n.index() as u64 + 1);
        }
        let c = ConfigId((r % 16) as u32);
        if let Some(e) = rm.find_best_idle(c, &mut steps) {
            acc = acc.wrapping_add(e.node.index() as u64 + 1);
        }
        if let Some(e) = rm.find_worst_idle(c, &mut steps) {
            acc = acc.wrapping_add(e.node.index() as u64 + 1);
        }
    }
    acc.wrapping_add(steps.scheduling)
        .wrapping_add(steps.housekeeping)
}

fn time_best_of<R>(mut f: impl FnMut() -> R) -> (R, u128) {
    let mut best = u128::MAX;
    let mut out = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_nanos().max(1));
        out = Some(r);
    }
    // INVARIANT: REPS is a nonzero constant, so the loop body ran.
    (out.expect("REPS >= 1"), best)
}

/// One micro measurement: search time only, at a fixed node count.
#[derive(Clone, Debug)]
pub struct MicroPoint {
    /// Node-table size of the populated store.
    pub nodes: usize,
    /// Rounds of the search mix per measurement.
    pub rounds: usize,
    /// Best-of-[`REPS`] wall time under the linear backend, ns.
    pub linear_ns: u128,
    /// Best-of-[`REPS`] wall time under the indexed backend, ns.
    pub indexed_ns: u128,
    /// `linear_ns / indexed_ns`.
    pub speedup: f64,
}

/// One end-to-end measurement: a full simulation at a grid cell.
#[derive(Clone, Debug)]
pub struct EndToEndPoint {
    /// Node count of the cell.
    pub nodes: usize,
    /// Task count of the cell.
    pub tasks: usize,
    /// Best-of-[`REPS`] wall time of the whole run, linear backend, ns.
    pub linear_ns: u128,
    /// Best-of-[`REPS`] wall time of the whole run, indexed backend, ns.
    pub indexed_ns: u128,
    /// `linear_ns / indexed_ns`.
    pub speedup: f64,
    /// Whether the two backends' XML reports were byte-identical
    /// (always true; recorded so the JSON is self-certifying).
    pub reports_identical: bool,
}

/// Full benchmark output, serializable to `BENCH_search.json`.
#[derive(Clone, Debug)]
pub struct SearchBenchReport {
    /// Base seed of the end-to-end grid cells.
    pub seed: u64,
    /// Search-time-only measurements across the node ladder.
    pub micro: Vec<MicroPoint>,
    /// Whole-run measurements across the node × task grid.
    pub end_to_end: Vec<EndToEndPoint>,
}

impl SearchBenchReport {
    /// Micro speedup at the largest node count (the acceptance number).
    #[must_use]
    pub fn peak_micro_speedup(&self) -> f64 {
        self.micro.last().map_or(0.0, |p| p.speedup)
    }

    /// Serialize to the committed `BENCH_search.json` schema.
    ///
    /// Hand-rolled (instead of a serde derive) so the u128 nanosecond
    /// fields and the fixed field order are under our control.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"search-backends\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(
            out,
            "  \"peak_micro_speedup\": {:.2},",
            self.peak_micro_speedup()
        );
        let _ = writeln!(out, "  \"micro\": [");
        for (i, p) in self.micro.iter().enumerate() {
            let comma = if i + 1 < self.micro.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"nodes\": {}, \"rounds\": {}, \"linear_ns\": {}, \
                 \"indexed_ns\": {}, \"speedup\": {:.2}}}{comma}",
                p.nodes, p.rounds, p.linear_ns, p.indexed_ns, p.speedup
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"end_to_end\": [");
        for (i, p) in self.end_to_end.iter().enumerate() {
            let comma = if i + 1 < self.end_to_end.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"nodes\": {}, \"tasks\": {}, \"linear_ns\": {}, \
                 \"indexed_ns\": {}, \"speedup\": {:.2}, \"reports_identical\": {}}}{comma}",
                p.nodes, p.tasks, p.linear_ns, p.indexed_ns, p.speedup, p.reports_identical
            );
        }
        let _ = writeln!(out, "  ]");
        out.push_str("}\n");
        out
    }
}

/// Time the search mix at one node count under both backends.
///
/// # Panics
/// Panics if the two backends' workout checksums disagree — that would
/// mean the backends returned different search results, and no timing
/// of wrong answers is worth reporting.
#[must_use]
pub fn micro_point(nodes: usize, rounds: usize) -> MicroPoint {
    let lin = populated_store(nodes, SearchBackend::Linear);
    let idx = populated_store(nodes, SearchBackend::Indexed);
    // Warm up (page in both stores) and verify equivalence first.
    let check_l = search_workout(&lin, rounds);
    let check_i = search_workout(&idx, rounds);
    assert_eq!(
        check_l, check_i,
        "backends disagreed on the {nodes}-node search workout"
    );
    let (_, linear_ns) = time_best_of(|| search_workout(&lin, rounds));
    let (_, indexed_ns) = time_best_of(|| search_workout(&idx, rounds));
    MicroPoint {
        nodes,
        rounds,
        linear_ns,
        indexed_ns,
        speedup: linear_ns as f64 / indexed_ns as f64,
    }
}

/// Time one full grid cell under both backends and check the reports
/// are byte-identical.
///
/// # Panics
/// Panics if the parameters fail validation or the backends' XML
/// reports differ (they cannot, by DESIGN.md §11 — this is the bench's
/// own guard).
#[must_use]
pub fn end_to_end_point(nodes: usize, tasks: usize, seed: u64) -> EndToEndPoint {
    let mut params = SimParams::paper(nodes, tasks, ReconfigMode::Partial);
    params.seed = dreamsim_rng::derive_stream(seed, (nodes as u64) << 32 | tasks as u64);
    let label = format!("bench-n{nodes}-t{tasks}");
    let lin_point = SweepPoint::new(label.clone(), params.clone());
    let idx_point = SweepPoint::new(label, params).with_search(SearchBackend::Indexed);
    let (lin_report, linear_ns) = time_best_of(|| run_point(&lin_point));
    let (idx_report, indexed_ns) = time_best_of(|| run_point(&idx_point));
    let identical = lin_report.to_xml() == idx_report.to_xml();
    assert!(identical, "backend reports diverged at n{nodes}/t{tasks}");
    EndToEndPoint {
        nodes,
        tasks,
        linear_ns,
        indexed_ns,
        speedup: linear_ns as f64 / indexed_ns as f64,
        reports_identical: identical,
    }
}

/// Run the full benchmark: micro points across `node_ladder` (ascending
/// order recommended — the last entry is the headline number) and
/// end-to-end points across `node_ladder × task_ladder`.
#[must_use]
pub fn run_search_bench(
    node_ladder: &[usize],
    task_ladder: &[usize],
    seed: u64,
    rounds: usize,
) -> SearchBenchReport {
    let micro = node_ladder
        .iter()
        .map(|&n| micro_point(n, rounds))
        .collect();
    let mut end_to_end = Vec::new();
    for &n in node_ladder {
        for &t in task_ladder {
            end_to_end.push(end_to_end_point(n, t, seed));
        }
    }
    SearchBenchReport {
        seed,
        micro,
        end_to_end,
    }
}

// ----------------------------------------------------------------------
// Grid benchmark (`dreamsim bench-grid` / BENCH_grid.json)
// ----------------------------------------------------------------------

/// FNV-1a over a byte string; the checksum the grid bench folds cell
/// dumps into (stable, dependency-free, endian-independent).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Serial timings of one node count's sub-grid under each backend.
#[derive(Clone, Debug)]
pub struct GridSerialPoint {
    /// Node count of the sub-grid.
    pub nodes: usize,
    /// Best-of-[`REPS`] serial wall time, linear backend, ns.
    pub linear_ns: u128,
    /// Best-of-[`REPS`] serial wall time, indexed backend, ns.
    pub indexed_ns: u128,
    /// Best-of-[`REPS`] serial wall time, auto backend, ns.
    pub auto_ns: u128,
    /// `auto_ns` relative to the *faster* explicit backend (1.0 =
    /// exactly as fast; the acceptance bound is ≤ 1.05).
    pub auto_vs_best: f64,
}

/// Wall time of the whole grid at one worker count (auto backend).
#[derive(Clone, Debug)]
pub struct GridJobsPoint {
    /// Worker count (`--jobs`).
    pub jobs: usize,
    /// Best-of-[`REPS`] wall time, ns.
    pub wall_ns: u128,
    /// Speedup relative to the `jobs = 1` entry.
    pub speedup_vs_j1: f64,
}

/// Full grid-benchmark output, serializable to `BENCH_grid.json`.
#[derive(Clone, Debug)]
pub struct GridBenchReport {
    /// Base seed of the grid cells.
    pub seed: u64,
    /// Hardware threads the host reported (`available_parallelism`);
    /// parallel speedups are bounded by this, so the JSON records it.
    pub hardware_threads: usize,
    /// Node ladder of the grid.
    pub node_ladder: Vec<usize>,
    /// Task ladder of the grid.
    pub task_ladder: Vec<usize>,
    /// Per-node-count serial backend comparison.
    pub serial: Vec<GridSerialPoint>,
    /// Whole-grid wall time across the jobs ladder.
    pub parallel: Vec<GridJobsPoint>,
    /// FNV-1a checksum of the whole grid's cell dump.
    pub checksum: u64,
    /// Whether every timed run — all backends, all worker counts —
    /// produced identical cell dumps (always true; recorded so the
    /// JSON is self-certifying).
    pub checksums_identical: bool,
}

impl GridBenchReport {
    /// Serialize to the committed `BENCH_grid.json` schema (hand-rolled
    /// for the same reasons as [`SearchBenchReport::to_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let list = |v: &[usize]| {
            v.iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"grid-parallel\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"hardware_threads\": {},", self.hardware_threads);
        let _ = writeln!(out, "  \"node_ladder\": [{}],", list(&self.node_ladder));
        let _ = writeln!(out, "  \"task_ladder\": [{}],", list(&self.task_ladder));
        let _ = writeln!(out, "  \"serial\": [");
        for (i, p) in self.serial.iter().enumerate() {
            let comma = if i + 1 < self.serial.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"nodes\": {}, \"linear_ns\": {}, \"indexed_ns\": {}, \
                 \"auto_ns\": {}, \"auto_vs_best\": {:.3}}}{comma}",
                p.nodes, p.linear_ns, p.indexed_ns, p.auto_ns, p.auto_vs_best
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"parallel\": [");
        for (i, p) in self.parallel.iter().enumerate() {
            let comma = if i + 1 < self.parallel.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"jobs\": {}, \"wall_ns\": {}, \"speedup_vs_j1\": {:.2}}}{comma}",
                p.jobs, p.wall_ns, p.speedup_vs_j1
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"checksum\": \"{:016x}\",", self.checksum);
        let _ = writeln!(
            out,
            "  \"checksums_identical\": {}",
            self.checksums_identical
        );
        out.push_str("}\n");
        out
    }
}

/// Run the grid benchmark: serial backend comparison per node count,
/// then the whole grid across `jobs_ladder` worker counts under the
/// auto backend. Every timed run's cell dump is checksummed and
/// cross-checked.
///
/// # Panics
/// Panics if any two runs' cell dumps disagree — a grid benchmark that
/// compared different answers would be meaningless.
#[must_use]
pub fn run_grid_bench(
    node_ladder: &[usize],
    task_ladder: &[usize],
    seed: u64,
    jobs_ladder: &[usize],
) -> GridBenchReport {
    let mut identical = true;
    let mut serial = Vec::with_capacity(node_ladder.len());
    for &nodes in node_ladder {
        let backends = [
            SearchBackend::Linear,
            SearchBackend::Indexed,
            SearchBackend::Auto,
        ];
        let mut times = [0u128; 3];
        let mut dumps: Vec<String> = Vec::with_capacity(3);
        for (slot, &backend) in backends.iter().enumerate() {
            let (grid, ns) = time_best_of(|| {
                ExperimentGrid::run_with_backend(&[nodes], task_ladder, seed, 1, backend)
            });
            times[slot] = ns;
            dumps.push(grid.cells_csv());
        }
        assert!(
            dumps.iter().all(|d| d == &dumps[0]),
            "backends disagreed on the {nodes}-node sub-grid"
        );
        identical &= dumps.iter().all(|d| d == &dumps[0]);
        let best = times[0].min(times[1]);
        serial.push(GridSerialPoint {
            nodes,
            linear_ns: times[0],
            indexed_ns: times[1],
            auto_ns: times[2],
            auto_vs_best: times[2] as f64 / best as f64,
        });
    }
    let mut parallel = Vec::with_capacity(jobs_ladder.len());
    let mut base_dump: Option<String> = None;
    let mut j1_ns = 0u128;
    for &jobs in jobs_ladder {
        let (grid, ns) =
            time_best_of(|| ExperimentGrid::run(node_ladder, task_ladder, seed, jobs.max(1)));
        let dump = grid.cells_csv();
        match &base_dump {
            None => {
                base_dump = Some(dump);
                j1_ns = ns;
            }
            Some(b) => {
                assert_eq!(b, &dump, "grid diverged at -j{jobs}");
                identical &= b == &dump;
            }
        }
        parallel.push(GridJobsPoint {
            jobs: jobs.max(1),
            wall_ns: ns,
            speedup_vs_j1: j1_ns as f64 / ns as f64,
        });
    }
    // INVARIANT: callers pass a nonempty jobs ladder (the CLI defaults
    // one), so the whole-grid dump exists.
    let checksum = fnv1a(base_dump.expect("jobs ladder must be nonempty").as_bytes());
    GridBenchReport {
        seed,
        hardware_threads: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        node_ladder: node_ladder.to_vec(),
        task_ladder: task_ladder.to_vec(),
        serial,
        parallel,
        checksum,
        checksums_identical: identical,
    }
}

// ----------------------------------------------------------------------
// Scale benchmark (`dreamsim bench-scale` / BENCH_scale.json)
// ----------------------------------------------------------------------

/// Process peak resident-set size (`VmHWM`) in KiB, read from
/// `/proc/self/status`; 0 on platforms without procfs.
///
/// `VmHWM` is the process-lifetime *high-water mark*, so it is
/// cumulative across rungs: the scale bench runs its ladder in
/// ascending node order and reads the mark right after each rung's
/// scale-path run, which makes the recorded value ≈ that rung's own
/// peak (every earlier rung is an order of magnitude smaller).
#[must_use]
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("VmHWM:")?
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse::<u64>()
                    .ok()
            })
        })
        .unwrap_or(0)
}

/// One rung of the scale ladder: the same workload timed under the
/// scale path (calendar queue + sketch stats) and the seed path
/// (binary heap + exact samples).
#[derive(Clone, Debug)]
pub struct ScaleRung {
    /// Node count of the rung.
    pub nodes: usize,
    /// Task count of the rung (`nodes × tasks_per_node`).
    pub tasks: usize,
    /// Wall time under the seed path (heap queue, exact stats), ns;
    /// best of the configured repetitions.
    pub heap_exact_ns: u128,
    /// Wall time under the scale path (calendar queue, sketch stats),
    /// ns; best of the configured repetitions.
    pub calendar_sketch_ns: u128,
    /// `heap_exact_ns / calendar_sketch_ns`.
    pub speedup: f64,
    /// Peak RSS in KiB right after the scale-path run (see
    /// [`peak_rss_kb`] for the cumulative caveat).
    pub peak_rss_kb: u64,
    /// Whether the calendar-queue report was verified byte-identical
    /// to the heap report at this rung (done up to the configured
    /// verification ceiling; `false` means *not checked here*, never
    /// "checked and differed" — a difference panics).
    pub reports_cross_checked: bool,
    /// Deterministic per-phase operation counters of the scale-path
    /// run (identical under the seed path — the differential battery
    /// pins backend-independence), so CI can diff algorithmic cost
    /// against the committed baseline without trusting the wall clock.
    pub profile: dreamsim_engine::PhaseProfile,
}

/// Full scale-ladder output, serializable to `BENCH_scale.json`.
#[derive(Clone, Debug)]
pub struct ScaleBenchReport {
    /// Base seed the rung seeds derive from.
    pub seed: u64,
    /// Tasks generated per node at every rung.
    pub tasks_per_node: usize,
    /// Largest rung at which the calendar-vs-heap report cross-check
    /// ran.
    pub verify_max_nodes: usize,
    /// Ladder rungs, ascending node counts.
    pub rungs: Vec<ScaleRung>,
}

impl ScaleBenchReport {
    /// Serialize to the committed `BENCH_scale.json` schema
    /// (hand-rolled for the same reasons as
    /// [`SearchBenchReport::to_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"benchmark\": \"scale-ladder\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"tasks_per_node\": {},", self.tasks_per_node);
        let _ = writeln!(out, "  \"verify_max_nodes\": {},", self.verify_max_nodes);
        let _ = writeln!(out, "  \"rungs\": [");
        for (i, r) in self.rungs.iter().enumerate() {
            let comma = if i + 1 < self.rungs.len() { "," } else { "" };
            let mut profile = String::from("{");
            for (j, (name, value)) in r.profile.gated_counters().iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(profile, "{sep}\"{name}\": {value}");
            }
            let _ = write!(profile, ", \"checkpoint_bytes\": {}", r.profile.checkpoint_bytes);
            if let Some(allocs) = r.profile.allocations {
                let _ = write!(profile, ", \"allocations\": {allocs}");
            }
            profile.push('}');
            let _ = writeln!(
                out,
                "    {{\"nodes\": {}, \"tasks\": {}, \"heap_exact_ns\": {}, \
                 \"calendar_sketch_ns\": {}, \"speedup\": {:.2}, \"peak_rss_kb\": {}, \
                 \"reports_cross_checked\": {}, \"profile\": {profile}}}{comma}",
                r.nodes,
                r.tasks,
                r.heap_exact_ns,
                r.calendar_sketch_ns,
                r.speedup,
                r.peak_rss_kb,
                r.reports_cross_checked
            );
        }
        let _ = writeln!(out, "  ]");
        out.push_str("}\n");
        out
    }
}

impl ScaleBenchReport {
    /// Diff this run's per-rung phase counters against a committed
    /// baseline (`BENCH_scale.json` text). Returns human-readable notes
    /// on success; an `Err` lists every counter that *grew* by more than
    /// `tolerance` (e.g. `0.25` = 25 %) relative to the baseline.
    ///
    /// Only the operation counters are gated — wall-clock and RSS fields
    /// are ignored, so the check is meaningful on loaded CI runners.
    /// Counter decreases are reported as notes, never failures (an
    /// improvement should update the baseline, not break the build).
    /// Baseline rungs that predate the profile schema, and rungs present
    /// on only one side, are skipped with a note.
    pub fn check_against(&self, baseline_json: &str, tolerance: f64) -> Result<Vec<String>, String> {
        let baseline: serde::Value = serde_json::from_str(baseline_json)
            .map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        let base_rungs = baseline
            .get("rungs")
            .and_then(serde::Value::as_array)
            .ok_or_else(|| "baseline has no rungs array".to_string())?;
        let mut notes = Vec::new();
        let mut failures = Vec::new();
        for r in &self.rungs {
            let found = base_rungs.iter().find(|b| {
                b.get("nodes").and_then(serde::Value::as_u64) == Some(r.nodes as u64)
                    && b.get("tasks").and_then(serde::Value::as_u64) == Some(r.tasks as u64)
            });
            let Some(base) = found else {
                notes.push(format!(
                    "n{}: no baseline rung with {} tasks — skipped",
                    r.nodes, r.tasks
                ));
                continue;
            };
            let Some(profile) = base.get("profile") else {
                notes.push(format!("n{}: baseline predates profiles — skipped", r.nodes));
                continue;
            };
            for (name, new) in r.profile.gated_counters() {
                let Some(old) = profile.get(name).and_then(serde::Value::as_u64) else {
                    notes.push(format!("n{}: baseline lacks {name} — skipped", r.nodes));
                    continue;
                };
                if new == old {
                    continue;
                }
                let growth = if old == 0 {
                    f64::INFINITY
                } else {
                    (new as f64 - old as f64) / old as f64
                };
                if growth > tolerance {
                    failures.push(format!(
                        "n{}: {name} regressed {old} -> {new} (+{:.1}%, tolerance {:.0}%)",
                        r.nodes,
                        growth * 100.0,
                        tolerance * 100.0
                    ));
                } else {
                    notes.push(format!(
                        "n{}: {name} changed {old} -> {new} ({:+.1}%) within tolerance",
                        r.nodes,
                        growth * 100.0
                    ));
                }
            }
        }
        if failures.is_empty() {
            Ok(notes)
        } else {
            Err(failures.join("\n"))
        }
    }
}

fn time_reps<R>(reps: usize, mut f: impl FnMut() -> R) -> (R, u128) {
    let mut best = u128::MAX;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_nanos().max(1));
        out = Some(r);
    }
    // INVARIANT: reps is clamped to >= 1, so the loop body ran.
    (out.expect("reps >= 1"), best)
}

/// Run the scale ladder: at each rung (ascending `node_ladder`, tasks
/// scaled as `nodes × tasks_per_node`) time the scale path (calendar
/// queue + sketch stats) and the seed path (heap + exact), record peak
/// RSS, and — up to `verify_max_nodes` — cross-check that the calendar
/// queue reproduces the heap's XML report byte for byte (with exact
/// stats on both sides, so the comparison isolates the queue; the
/// sketch-vs-exact identity below its window is pinned separately by
/// the differential battery).
///
/// # Panics
/// Panics if parameters fail validation or a cross-check finds a
/// report difference — timings of diverging runs are meaningless.
#[must_use]
pub fn run_scale_bench(
    node_ladder: &[usize],
    tasks_per_node: usize,
    seed: u64,
    verify_max_nodes: usize,
    reps: usize,
) -> ScaleBenchReport {
    let mut rungs = Vec::with_capacity(node_ladder.len());
    for &nodes in node_ladder {
        let tasks = nodes.saturating_mul(tasks_per_node);
        let mut params = SimParams::paper(nodes, tasks, ReconfigMode::Partial);
        params.seed = dreamsim_rng::derive_stream(seed, nodes as u64);
        let label = format!("scale-n{nodes}");
        let scale_point = SweepPoint::new(label.clone(), params.clone())
            .with_queue(dreamsim_engine::EventQueueBackend::Calendar)
            .with_stats(dreamsim_engine::StatsBackend::Sketch);
        let seed_point = SweepPoint::new(label.clone(), params.clone());
        let ((_, profile), calendar_sketch_ns) =
            time_reps(reps, || crate::runner::run_point_profiled(&scale_point));
        let peak = peak_rss_kb();
        let (heap_report, heap_exact_ns) = time_reps(reps, || run_point(&seed_point));
        let cross_checked = nodes <= verify_max_nodes;
        if cross_checked {
            let cal_exact = run_point(
                &SweepPoint::new(label, params)
                    .with_queue(dreamsim_engine::EventQueueBackend::Calendar),
            );
            assert_eq!(
                heap_report.to_xml(),
                cal_exact.to_xml(),
                "calendar queue diverged from heap at n{nodes}"
            );
        }
        rungs.push(ScaleRung {
            nodes,
            tasks,
            heap_exact_ns,
            calendar_sketch_ns,
            speedup: heap_exact_ns as f64 / calendar_sketch_ns as f64,
            peak_rss_kb: peak,
            reports_cross_checked: cross_checked,
            profile,
        });
    }
    ScaleBenchReport {
        seed,
        tasks_per_node,
        verify_max_nodes,
        rungs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workout_checksums_agree_across_backends() {
        for nodes in [10, 50, 150] {
            let lin = populated_store(nodes, SearchBackend::Linear);
            let idx = populated_store(nodes, SearchBackend::Indexed);
            assert_eq!(
                search_workout(&lin, 64),
                search_workout(&idx, 64),
                "{nodes} nodes"
            );
            idx.check_invariants().unwrap();
        }
    }

    #[test]
    fn bench_report_serializes_expected_schema() {
        let report = run_search_bench(&[20, 40], &[100], 7, 16);
        assert_eq!(report.micro.len(), 2);
        assert_eq!(report.end_to_end.len(), 2);
        assert!(report.end_to_end.iter().all(|p| p.reports_identical));
        let json = report.to_json();
        for needle in [
            "\"benchmark\": \"search-backends\"",
            "\"peak_micro_speedup\"",
            "\"micro\"",
            "\"end_to_end\"",
            "\"reports_identical\": true",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(report.peak_micro_speedup() > 0.0);
    }

    #[test]
    fn scale_bench_serializes_expected_schema_and_cross_checks() {
        let report = run_scale_bench(&[20, 40], 10, 7, 20, 1);
        assert_eq!(report.rungs.len(), 2);
        assert_eq!(report.rungs[0].tasks, 200);
        assert!(report.rungs[0].reports_cross_checked, "20 <= verify cap");
        assert!(!report.rungs[1].reports_cross_checked, "40 > verify cap");
        assert!(report.rungs.iter().all(|r| r.calendar_sketch_ns > 0));
        let json = report.to_json();
        for needle in [
            "\"benchmark\": \"scale-ladder\"",
            "\"tasks_per_node\": 10",
            "\"verify_max_nodes\": 20",
            "\"heap_exact_ns\"",
            "\"calendar_sketch_ns\"",
            "\"peak_rss_kb\"",
            "\"reports_cross_checked\": true",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn peak_rss_reads_a_nonzero_high_water_mark_on_linux() {
        // The committed BENCH_scale.json promises a real peak-RSS
        // column; on the Linux CI/dev hosts procfs must deliver one.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn grid_bench_serializes_expected_schema() {
        let report = run_grid_bench(&[20], &[100], 7, &[1, 2]);
        assert_eq!(report.serial.len(), 1);
        assert_eq!(report.parallel.len(), 2);
        assert!(report.checksums_identical);
        assert!(report.serial[0].auto_vs_best > 0.0);
        assert!((report.parallel[0].speedup_vs_j1 - 1.0).abs() < 1e-9);
        let json = report.to_json();
        for needle in [
            "\"benchmark\": \"grid-parallel\"",
            "\"hardware_threads\"",
            "\"serial\"",
            "\"parallel\"",
            "\"checksum\"",
            "\"checksums_identical\": true",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
