//! Uniform variates: unit-interval floats, unbiased bounded integers, and
//! the inclusive integer ranges DReAMSim's Table II parameters are written
//! in (e.g. node `TotalArea` ∈ `[1000..4000]` area units).

use crate::engine::RngCore;

/// Uniform `f64` in `[0, 1)` using the top 53 bits of one draw.
#[inline]
pub fn f64_unit<R: RngCore>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Uniform `f64` in the open interval `(0, 1)`: safe to pass to `ln`.
#[inline]
pub fn f64_open<R: RngCore>(rng: &mut R) -> f64 {
    loop {
        let v = f64_unit(rng);
        if v > 0.0 {
            return v;
        }
    }
}

/// Unbiased uniform integer in `[0, bound)` via Lemire's multiply-shift
/// rejection (*Fast Random Integer Generation in an Interval*, 2019).
///
/// # Panics
/// Panics if `bound == 0`.
#[inline]
pub fn below<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "uniform::below requires a nonzero bound");
    let mut m = u128::from(rng.next_u64()) * u128::from(bound);
    let mut lo = m as u64;
    if lo < bound {
        // Rejection threshold: 2^64 mod bound.
        let t = bound.wrapping_neg() % bound;
        while lo < t {
            m = u128::from(rng.next_u64()) * u128::from(bound);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Unbiased uniform integer in the inclusive range `[lo, hi]`.
///
/// # Panics
/// Panics if `lo > hi`.
#[inline]
pub fn inclusive<R: RngCore>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    assert!(
        lo <= hi,
        "uniform::inclusive requires lo <= hi ({lo} > {hi})"
    );
    let span = hi - lo;
    if span == u64::MAX {
        return rng.next_u64();
    }
    lo + below(rng, span + 1)
}

/// Bernoulli trial with success probability `p`; out-of-range `p` is
/// clamped (`p <= 0` never succeeds, `p >= 1` always succeeds). NaN is
/// treated as 0.
#[inline]
pub fn bernoulli<R: RngCore>(rng: &mut R, p: f64) -> bool {
    if !(p > 0.0) {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    f64_unit(rng) < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Xoshiro256StarStar;

    fn engine(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from(seed)
    }

    #[test]
    fn f64_unit_in_range_and_uses_53_bits() {
        let mut e = engine(1);
        for _ in 0..100_000 {
            let v = f64_unit(&mut e);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_open_never_zero() {
        let mut e = engine(2);
        for _ in 0..100_000 {
            assert!(f64_open(&mut e) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero bound")]
    fn below_zero_bound_panics() {
        below(&mut engine(3), 0);
    }

    #[test]
    fn below_small_bounds_exhaustive_coverage() {
        let mut e = engine(4);
        for bound in 1..=16u64 {
            let mut seen = vec![false; bound as usize];
            for _ in 0..2_000 {
                let v = below(&mut e, bound);
                assert!(v < bound);
                seen[v as usize] = true;
            }
            assert!(seen.iter().all(|&s| s), "bound {bound} missed a value");
        }
    }

    #[test]
    fn below_is_approximately_uniform() {
        let mut e = engine(5);
        let bound = 7u64;
        let n = 700_000;
        let mut counts = [0u64; 7];
        for _ in 0..n {
            counts[below(&mut e, bound) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        // Chi-squared with 6 dof; 0.999 quantile ≈ 22.46.
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 22.46, "chi2={chi2}");
    }

    #[test]
    fn below_handles_non_power_of_two_near_max() {
        let mut e = engine(6);
        let bound = u64::MAX - 3;
        for _ in 0..1000 {
            assert!(below(&mut e, bound) < bound);
        }
    }

    #[test]
    fn inclusive_degenerate_range() {
        let mut e = engine(7);
        assert_eq!(inclusive(&mut e, 42, 42), 42);
    }

    #[test]
    fn inclusive_full_u64_range_does_not_panic() {
        let mut e = engine(8);
        let _ = inclusive(&mut e, 0, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inclusive_reversed_range_panics() {
        inclusive(&mut engine(9), 5, 4);
    }

    #[test]
    fn inclusive_table_ii_node_area_mean() {
        // U[1000..4000] has mean 2500.
        let mut e = engine(10);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| inclusive(&mut e, 1000, 4000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 2500.0).abs() < 10.0, "mean={mean}");
    }

    #[test]
    fn bernoulli_edge_cases() {
        let mut e = engine(11);
        assert!(!bernoulli(&mut e, 0.0));
        assert!(!bernoulli(&mut e, -1.0));
        assert!(!bernoulli(&mut e, f64::NAN));
        assert!(bernoulli(&mut e, 1.0));
        assert!(bernoulli(&mut e, 2.0));
    }

    #[test]
    fn bernoulli_rate_close_to_p() {
        // The closest-match fraction in Table II is 15%.
        let mut e = engine(12);
        let n = 200_000;
        let hits = (0..n).filter(|_| bernoulli(&mut e, 0.15)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.15).abs() < 0.005, "rate={rate}");
    }
}
