//! Poisson variates.
//!
//! Two regimes:
//!
//! * `mean < 10` — Knuth's multiplication method: count uniforms until
//!   their product drops below `e^{−mean}` (exact, O(mean) per draw).
//! * `mean ≥ 10` — Hörmann's PTRS transformed-rejection algorithm
//!   (*The transformed rejection method for generating Poisson random
//!   variables*, Insurance: Mathematics and Economics 12, 1993): O(1)
//!   expected time with an exact log-density acceptance test.

use crate::engine::RngCore;
use crate::special::ln_factorial;
use crate::uniform;

/// Threshold between the Knuth and PTRS regimes.
const PTRS_CUTOFF: f64 = 10.0;

/// Poisson variate with the given mean.
///
/// `mean <= 0` (including NaN) yields 0, matching the degenerate limit.
///
/// # Panics
/// Panics if `mean` is infinite.
pub fn poisson<R: RngCore>(rng: &mut R, mean: f64) -> u64 {
    assert!(!mean.is_infinite(), "poisson mean must be finite");
    if !(mean > 0.0) {
        return 0;
    }
    if mean < PTRS_CUTOFF {
        knuth(rng, mean)
    } else {
        ptrs(rng, mean)
    }
}

/// Knuth's multiplication method: exact for small means.
fn knuth<R: RngCore>(rng: &mut R, mean: f64) -> u64 {
    let limit = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0f64;
    loop {
        p *= uniform::f64_open(rng);
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

/// Hörmann's PTRS: transformed rejection with squeeze, for `mean ≥ 10`.
fn ptrs<R: RngCore>(rng: &mut R, mean: f64) -> u64 {
    let b = 0.931 + 2.53 * mean.sqrt();
    let a = -0.059 + 0.024_83 * b;
    let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
    let v_r = 0.9277 - 3.6224 / (b - 2.0);
    let ln_mean = mean.ln();
    loop {
        let u = uniform::f64_unit(rng) - 0.5;
        let v = uniform::f64_open(rng);
        let us = 0.5 - u.abs();
        let k = ((2.0 * a / us + b) * u + mean + 0.43).floor();
        if us >= 0.07 && v <= v_r {
            return k as u64; // squeeze acceptance (most draws)
        }
        if k < 0.0 || (us < 0.013 && v > us) {
            continue;
        }
        // Exact test in log space.
        let lhs = (v * inv_alpha / (a / (us * us) + b)).ln();
        let rhs = k * ln_mean - mean - ln_factorial(k as u64);
        if lhs <= rhs {
            return k as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Xoshiro256StarStar;

    fn engine(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from(seed)
    }

    fn sample(seed: u64, mean: f64, n: usize) -> Vec<u64> {
        let mut e = engine(seed);
        (0..n).map(|_| poisson(&mut e, mean)).collect()
    }

    fn mean_var(xs: &[u64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let m = xs.iter().map(|&x| x as f64).sum::<f64>() / n;
        let v = xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / n;
        (m, v)
    }

    #[test]
    fn degenerate_means() {
        let mut e = engine(1);
        assert_eq!(poisson(&mut e, 0.0), 0);
        assert_eq!(poisson(&mut e, -3.0), 0);
        assert_eq!(poisson(&mut e, f64::NAN), 0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_mean_panics() {
        poisson(&mut engine(2), f64::INFINITY);
    }

    #[test]
    fn mean_equals_variance_small_regime() {
        for (seed, mean) in [(3u64, 0.1), (4, 1.0), (5, 4.5), (6, 9.9)] {
            let xs = sample(seed, mean, 200_000);
            let (m, v) = mean_var(&xs);
            assert!((m - mean).abs() < 0.03 * (1.0 + mean), "mean {m} vs {mean}");
            assert!((v - mean).abs() < 0.05 * (1.0 + mean), "var {v} vs {mean}");
        }
    }

    #[test]
    fn mean_equals_variance_ptrs_regime() {
        for (seed, mean) in [(7u64, 10.0), (8, 25.5), (9, 100.0), (10, 1234.5)] {
            let xs = sample(seed, mean, 200_000);
            let (m, v) = mean_var(&xs);
            assert!((m - mean).abs() / mean < 0.01, "mean {m} vs {mean}");
            assert!((v - mean).abs() / mean < 0.03, "var {v} vs {mean}");
        }
    }

    #[test]
    fn pmf_chi_squared_small_mean() {
        // Exact PMF comparison for mean 3 over k = 0..=10.
        let mean = 3.0;
        let xs = sample(11, mean, 300_000);
        let mut counts = [0u64; 12];
        for &x in &xs {
            counts[(x as usize).min(11)] += 1;
        }
        let mut pmf = vec![0.0f64; 12];
        let mut p = (-mean).exp();
        let mut cum = 0.0;
        for (k, slot) in pmf.iter_mut().enumerate().take(11) {
            *slot = p;
            cum += p;
            p *= mean / (k as f64 + 1.0);
        }
        pmf[11] = 1.0 - cum; // tail bucket
        let n = xs.len() as f64;
        let chi2: f64 = counts
            .iter()
            .zip(&pmf)
            .map(|(&c, &q)| {
                let e = q * n;
                let d = c as f64 - e;
                d * d / e.max(1e-9)
            })
            .sum();
        // 11 dof, 0.999 quantile ≈ 31.26.
        assert!(chi2 < 31.26, "chi2={chi2}");
    }

    #[test]
    fn regimes_agree_at_the_cutoff() {
        // Distributions at mean 9.99 (Knuth) and 10.01 (PTRS) must be
        // statistically indistinguishable: compare means and P(X <= 10).
        let a = sample(12, PTRS_CUTOFF - 0.01, 300_000);
        let b = sample(13, PTRS_CUTOFF + 0.01, 300_000);
        let (ma, _) = mean_var(&a);
        let (mb, _) = mean_var(&b);
        assert!((ma - mb).abs() < 0.06, "{ma} vs {mb}");
        let ca = a.iter().filter(|&&x| x <= 10).count() as f64 / a.len() as f64;
        let cb = b.iter().filter(|&&x| x <= 10).count() as f64 / b.len() as f64;
        assert!((ca - cb).abs() < 0.01, "{ca} vs {cb}");
    }

    #[test]
    fn skewness_decays_like_inverse_sqrt_mean() {
        let mean = 64.0;
        let xs = sample(14, mean, 300_000);
        let (m, v) = mean_var(&xs);
        let s3 = xs.iter().map(|&x| (x as f64 - m).powi(3)).sum::<f64>() / xs.len() as f64;
        let skew = s3 / v.powf(1.5);
        assert!((skew - 0.125).abs() < 0.03, "skew={skew}");
    }

    /// Independent cross-check: the sum of `k` Poisson(μ) draws is
    /// Poisson(kμ); verify against a direct large-mean draw.
    #[test]
    fn additivity_across_regimes() {
        let mut e = engine(15);
        let n = 100_000;
        let summed: Vec<u64> = (0..n)
            .map(|_| (0..8).map(|_| poisson(&mut e, 2.5)).sum::<u64>())
            .collect();
        let direct = sample(16, 20.0, n);
        let (ms, vs) = mean_var(&summed);
        let (md, vd) = mean_var(&direct);
        assert!((ms - md).abs() < 0.1, "{ms} vs {md}");
        assert!((vs - vd).abs() / vd < 0.05, "{vs} vs {vd}");
    }
}
