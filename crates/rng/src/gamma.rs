//! Gamma variates via Marsaglia & Tsang's method
//! (*A Simple Method for Generating Gamma Variables*, ACM TOMS 26(3),
//! 2000) — the exact algorithm the DReAMSim paper cites for its RNG class.
//!
//! For shape `a ≥ 1` the method squeezes an accept/reject test around the
//! cube of a shifted, scaled normal: with `d = a − 1/3`, `c = 1/√(9d)`,
//! candidates `d·(1 + c·x)³` for standard-normal `x` are accepted by a
//! cheap quartic squeeze most of the time and by an exact log test
//! otherwise. For `a < 1` the standard boost is used:
//! `Gamma(a) = Gamma(a+1) · U^{1/a}`.

use crate::engine::RngCore;
use crate::uniform;
use crate::ziggurat;

/// Gamma variate with the given shape and scale.
///
/// Mean is `shape * scale`, variance `shape * scale²`.
///
/// # Panics
/// Panics unless both parameters are positive and finite.
pub fn gamma<R: RngCore>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(
        shape > 0.0 && shape.is_finite(),
        "gamma shape must be positive and finite, got {shape}"
    );
    assert!(
        scale > 0.0 && scale.is_finite(),
        "gamma scale must be positive and finite, got {scale}"
    );
    scale * standard_gamma(rng, shape)
}

/// Standard gamma (scale 1) with the given shape.
fn standard_gamma<R: RngCore>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        // Marsaglia–Tsang boost for shape < 1.
        let g = standard_gamma(rng, shape + 1.0);
        let u = uniform::f64_open(rng);
        return g * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // v = (1 + c x)^3 must be positive.
        let (x, v) = loop {
            let x = ziggurat::normal(rng);
            let t = 1.0 + c * x;
            if t > 0.0 {
                break (x, t * t * t);
            }
        };
        let u = uniform::f64_open(rng);
        // Cheap squeeze accepted ~96% of the time for moderate shapes.
        if u < 1.0 - 0.0331 * (x * x) * (x * x) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Xoshiro256StarStar;

    fn engine(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from(seed)
    }

    fn sample(seed: u64, shape: f64, scale: f64, n: usize) -> Vec<f64> {
        let mut e = engine(seed);
        (0..n).map(|_| gamma(&mut e, shape, scale)).collect()
    }

    fn mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let m = xs.iter().sum::<f64>() / n;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n;
        (m, v)
    }

    #[test]
    fn moments_match_for_shapes_above_one() {
        for (seed, shape, scale) in [
            (1u64, 1.0, 1.0),
            (2, 2.5, 0.5),
            (3, 9.0, 2.0),
            (4, 100.0, 0.1),
        ] {
            let xs = sample(seed, shape, scale, 200_000);
            let (m, v) = mean_var(&xs);
            let em = shape * scale;
            let ev = shape * scale * scale;
            assert!((m - em).abs() / em < 0.02, "shape={shape} mean {m} vs {em}");
            assert!((v - ev).abs() / ev < 0.06, "shape={shape} var {v} vs {ev}");
        }
    }

    #[test]
    fn moments_match_for_shapes_below_one() {
        for (seed, shape) in [(5u64, 0.5), (6, 0.1), (7, 0.9)] {
            let xs = sample(seed, shape, 1.0, 300_000);
            let (m, v) = mean_var(&xs);
            assert!((m - shape).abs() / shape < 0.03, "shape={shape} mean {m}");
            assert!((v - shape).abs() / shape < 0.08, "shape={shape} var {v}");
        }
    }

    #[test]
    fn all_samples_positive() {
        for (seed, shape) in [(8u64, 0.2), (9, 1.0), (10, 50.0)] {
            assert!(sample(seed, shape, 3.0, 50_000).iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn shape_one_is_exponential() {
        // Gamma(1, θ) = Exp(mean θ): compare the empirical CDF at a few
        // points against 1 − e^{−x/θ}.
        let theta = 2.0;
        let xs = sample(11, 1.0, theta, 200_000);
        for q in [0.5, 1.0, 2.0, 4.0, 8.0] {
            let emp = xs.iter().filter(|&&x| x <= q).count() as f64 / xs.len() as f64;
            let exact = 1.0 - (-q / theta).exp();
            assert!((emp - exact).abs() < 0.01, "q={q}: {emp} vs {exact}");
        }
    }

    #[test]
    fn gamma_additivity() {
        // Gamma(a) + Gamma(b) ~ Gamma(a+b): compare first two moments of
        // the sum of two independent draws against a direct draw.
        let mut e = engine(12);
        let n = 100_000;
        let sums: Vec<f64> = (0..n)
            .map(|_| gamma(&mut e, 1.3, 1.0) + gamma(&mut e, 2.7, 1.0))
            .collect();
        let (m, v) = mean_var(&sums);
        assert!((m - 4.0).abs() < 0.05, "mean={m}");
        assert!((v - 4.0).abs() < 0.12, "var={v}");
    }

    #[test]
    fn skewness_sign_and_magnitude() {
        // Skewness of Gamma(k) is 2/sqrt(k).
        let xs = sample(13, 4.0, 1.0, 300_000);
        let (m, v) = mean_var(&xs);
        let s3 = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / xs.len() as f64;
        let skew = s3 / v.powf(1.5);
        assert!((skew - 1.0).abs() < 0.08, "skew={skew}");
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn zero_shape_panics() {
        gamma(&mut engine(14), 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn negative_scale_panics() {
        gamma(&mut engine(15), 1.0, -2.0);
    }

    #[test]
    #[should_panic(expected = "shape must be positive")]
    fn nan_shape_panics() {
        gamma(&mut engine(16), f64::NAN, 1.0);
    }
}
