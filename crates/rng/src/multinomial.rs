//! Multinomial variates via the conditional-binomial decomposition: the
//! count for each category in turn is `Bin(remaining, pᵢ / remaining
//! mass)`, which yields an exact multinomial sample in `k − 1` binomial
//! draws.

use crate::binomial::binomial;
use crate::engine::RngCore;

/// Distribute `n` trials over `probs.len()` categories.
///
/// Weights are normalized internally, so any nonnegative weight vector
/// with positive sum works (they need not sum to 1).
///
/// # Panics
/// Panics if `probs` is empty, contains a negative or non-finite weight,
/// or sums to zero while `n > 0`.
pub fn multinomial<R: RngCore>(rng: &mut R, n: u64, probs: &[f64]) -> Vec<u64> {
    assert!(
        !probs.is_empty(),
        "multinomial requires at least one category"
    );
    for (i, &w) in probs.iter().enumerate() {
        assert!(
            w >= 0.0 && w.is_finite(),
            "multinomial weight {i} must be nonnegative and finite, got {w}"
        );
    }
    let mut counts = vec![0u64; probs.len()];
    if n == 0 {
        return counts;
    }
    let total: f64 = probs.iter().sum();
    assert!(total > 0.0, "multinomial weights must not all be zero");

    let mut remaining = n;
    let mut mass = total;
    for (i, &w) in probs.iter().enumerate() {
        if remaining == 0 {
            break;
        }
        if i == probs.len() - 1 {
            counts[i] = remaining;
            break;
        }
        if w <= 0.0 {
            continue;
        }
        // Conditional probability of category i among the remaining mass.
        let p = (w / mass).min(1.0);
        let c = binomial(rng, p, remaining);
        counts[i] = c;
        remaining -= c;
        mass -= w;
        if mass <= 0.0 {
            // All residual mass was in category i (within rounding).
            break;
        }
    }
    // Rounding in `mass` may leave trials unassigned only if all later
    // weights were zero; give any remainder to the last positive-weight
    // category to conserve the total.
    let assigned: u64 = counts.iter().sum();
    if assigned < n {
        let last_pos = probs
            .iter()
            .rposition(|&w| w > 0.0)
            // INVARIANT: the caller-validated total of weights is > 0,
            // so at least one weight is positive.
            .expect("checked: total > 0");
        counts[last_pos] += n - assigned;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Xoshiro256StarStar;

    fn engine(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from(seed)
    }

    #[test]
    fn counts_always_sum_to_n() {
        let mut e = engine(1);
        let probs = [0.1, 0.0, 0.4, 0.2, 0.3];
        for n in [0u64, 1, 7, 100, 10_000] {
            for _ in 0..200 {
                let c = multinomial(&mut e, n, &probs);
                assert_eq!(c.iter().sum::<u64>(), n);
                assert_eq!(c[1], 0, "zero-weight category must stay empty");
            }
        }
    }

    #[test]
    fn single_category_gets_everything() {
        let mut e = engine(2);
        assert_eq!(multinomial(&mut e, 55, &[3.0]), vec![55]);
    }

    #[test]
    fn category_means_match_probabilities() {
        let mut e = engine(3);
        let probs = [1.0, 2.0, 3.0, 4.0]; // unnormalized
        let n = 1000u64;
        let reps = 20_000;
        let mut sums = [0u64; 4];
        for _ in 0..reps {
            let c = multinomial(&mut e, n, &probs);
            for (s, &ci) in sums.iter_mut().zip(&c) {
                *s += ci;
            }
        }
        let total: f64 = probs.iter().sum();
        for (i, &s) in sums.iter().enumerate() {
            let mean = s as f64 / reps as f64;
            let expect = n as f64 * probs[i] / total;
            assert!(
                (mean - expect).abs() / expect < 0.01,
                "cat {i}: {mean} vs {expect}"
            );
        }
    }

    #[test]
    fn covariance_is_negative_between_categories() {
        let mut e = engine(4);
        let probs = [0.5, 0.5];
        let n = 100u64;
        let reps = 50_000usize;
        let samples: Vec<(f64, f64)> = (0..reps)
            .map(|_| {
                let c = multinomial(&mut e, n, &probs);
                (c[0] as f64, c[1] as f64)
            })
            .collect();
        let m0 = samples.iter().map(|s| s.0).sum::<f64>() / reps as f64;
        let m1 = samples.iter().map(|s| s.1).sum::<f64>() / reps as f64;
        let cov = samples.iter().map(|s| (s.0 - m0) * (s.1 - m1)).sum::<f64>() / reps as f64;
        // Cov = −n p0 p1 = −25.
        assert!((cov + 25.0).abs() < 1.5, "cov={cov}");
    }

    #[test]
    fn trailing_zero_weights_conserve_total() {
        let mut e = engine(5);
        let c = multinomial(&mut e, 1000, &[1.0, 1.0, 0.0, 0.0]);
        assert_eq!(c.iter().sum::<u64>(), 1000);
        assert_eq!(c[2] + c[3], 0);
    }

    #[test]
    #[should_panic(expected = "at least one category")]
    fn empty_probs_panics() {
        multinomial(&mut engine(6), 10, &[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn all_zero_weights_panics() {
        multinomial(&mut engine(7), 10, &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "nonnegative and finite")]
    fn negative_weight_panics() {
        multinomial(&mut engine(8), 10, &[0.5, -0.1]);
    }

    #[test]
    fn n_zero_with_zero_weights_is_fine() {
        let mut e = engine(9);
        assert_eq!(multinomial(&mut e, 0, &[0.0, 0.0]), vec![0, 0]);
    }
}
