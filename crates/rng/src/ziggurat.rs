//! Normal and exponential variates via the Ziggurat method
//! (Marsaglia & Tsang, *The Ziggurat Method for Generating Random
//! Variables*, Journal of Statistical Software 5(8), 2000).
//!
//! We use the 256-layer formulation for both densities. Tables are built
//! once at first use from the layer-area constants published with the
//! method (the same construction as the reference `zigset` routines,
//! carried out in `f64`): the ziggurat covers the density with `N`
//! horizontal layers of equal area `V`, with the base layer absorbing the
//! tail beyond `R`.
//!
//! Sampling draws one 64-bit word, spends its low 8 bits on the layer
//! index and its high 53 bits on the abscissa, accepts immediately when
//! the point falls inside the layer's guaranteed rectangle (the
//! overwhelmingly common case), and otherwise falls back to an exact
//! edge/tail test.

use crate::engine::RngCore;
use crate::uniform;
use std::sync::OnceLock;

const LAYERS: usize = 256;

/// Rightmost layer boundary for the 256-layer normal ziggurat.
pub const NORMAL_R: f64 = 3.654_152_885_361_009;
/// Layer area for the 256-layer normal ziggurat.
pub const NORMAL_V: f64 = 0.004_928_673_233_974_655;
/// Rightmost layer boundary for the 256-layer exponential ziggurat.
pub const EXP_R: f64 = 7.697_117_470_131_487;
/// Layer area for the 256-layer exponential ziggurat.
pub const EXP_V: f64 = 0.003_949_659_822_581_557;

struct Tables {
    /// `x[i]`: right edge of layer `i`; `x[0] = V / f(R)` is the virtual
    /// base-layer width (base rectangle + tail have combined area `V`);
    /// `x[LAYERS] = 0`.
    x: [f64; LAYERS + 1],
    /// `f[i] = pdf(x[i])` (unnormalized).
    f: [f64; LAYERS + 1],
}

fn build_tables(r: f64, v: f64, pdf: fn(f64) -> f64, pdf_inv: fn(f64) -> f64) -> Tables {
    let mut x = [0.0; LAYERS + 1];
    let mut f = [0.0; LAYERS + 1];
    x[0] = v / pdf(r);
    x[1] = r;
    for i in 2..LAYERS {
        // Each layer has area V: x[i-1] * (f(x[i]) - f(x[i-1])) = V.
        let y = pdf(x[i - 1]) + v / x[i - 1];
        x[i] = pdf_inv(y);
        debug_assert!(x[i] < x[i - 1], "layer edges must decrease");
    }
    x[LAYERS] = 0.0;
    for i in 0..=LAYERS {
        f[i] = pdf(x[i]);
    }
    Tables { x, f }
}

fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp()
}

fn normal_pdf_inv(y: f64) -> f64 {
    (-2.0 * y.ln()).sqrt()
}

fn exp_pdf(x: f64) -> f64 {
    (-x).exp()
}

fn exp_pdf_inv(y: f64) -> f64 {
    -y.ln()
}

fn normal_tables() -> &'static Tables {
    static T: OnceLock<Tables> = OnceLock::new();
    T.get_or_init(|| build_tables(NORMAL_R, NORMAL_V, normal_pdf, normal_pdf_inv))
}

fn exp_tables() -> &'static Tables {
    static T: OnceLock<Tables> = OnceLock::new();
    T.get_or_init(|| build_tables(EXP_R, EXP_V, exp_pdf, exp_pdf_inv))
}

/// Standard normal variate, mean 0, variance 1.
pub fn normal<R: RngCore>(rng: &mut R) -> f64 {
    let t = normal_tables();
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0xFF) as usize;
        // Signed abscissa in (-1, 1) from the top 53 bits.
        let u = 2.0 * ((bits >> 11) as f64 / (1u64 << 53) as f64) - 1.0;
        let x = u * t.x[i];
        if x.abs() < t.x[i + 1] {
            return x; // inside the guaranteed rectangle
        }
        if i == 0 {
            // Base layer: sample the tail beyond R by Marsaglia's method.
            return normal_tail(rng, u < 0.0);
        }
        // Edge region: exact acceptance test against the density.
        let fr = uniform::f64_unit(rng);
        if t.f[i + 1] + (t.f[i] - t.f[i + 1]) * fr < normal_pdf(x) {
            return x;
        }
    }
}

fn normal_tail<R: RngCore>(rng: &mut R, negative: bool) -> f64 {
    loop {
        let u1 = uniform::f64_open(rng);
        let u2 = uniform::f64_open(rng);
        let x = -u1.ln() / NORMAL_R;
        let y = -u2.ln();
        if y + y > x * x {
            let v = NORMAL_R + x;
            return if negative { -v } else { v };
        }
    }
}

/// Standard exponential variate, mean 1.
pub fn exponential<R: RngCore>(rng: &mut R) -> f64 {
    let t = exp_tables();
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0xFF) as usize;
        let u = (bits >> 11) as f64 / (1u64 << 53) as f64;
        let x = u * t.x[i];
        if x < t.x[i + 1] {
            return x;
        }
        if i == 0 {
            // Tail beyond R: memorylessness gives R + Exp(1).
            return EXP_R - uniform::f64_open(rng).ln();
        }
        let fr = uniform::f64_unit(rng);
        if t.f[i + 1] + (t.f[i] - t.f[i + 1]) * fr < exp_pdf(x) {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Xoshiro256StarStar;

    const N: usize = 200_000;

    fn engine(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from(seed)
    }

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn table_construction_terminates_at_zero_with_unit_density() {
        let t = super::normal_tables();
        assert!(t.x[LAYERS] == 0.0);
        assert!((t.f[LAYERS] - 1.0).abs() < 1e-12, "pdf(0) = 1");
        assert!((t.x[1] - NORMAL_R).abs() < 1e-12);
        for i in 1..LAYERS {
            assert!(t.x[i + 1] < t.x[i], "edges strictly decreasing at {i}");
        }
        // Topmost layer closes the ziggurat: remaining area ≈ V.
        let top_area = t.x[LAYERS - 1] * (1.0 - t.f[LAYERS - 1]);
        assert!(
            (top_area - NORMAL_V).abs() / NORMAL_V < 0.05,
            "top layer area {top_area} vs V {NORMAL_V}"
        );
    }

    #[test]
    fn exp_table_construction_consistent() {
        let t = super::exp_tables();
        assert!((t.x[1] - EXP_R).abs() < 1e-12);
        assert!((t.f[LAYERS] - 1.0).abs() < 1e-12);
        let top_area = t.x[LAYERS - 1] * (1.0 - t.f[LAYERS - 1]);
        assert!((top_area - EXP_V).abs() / EXP_V < 0.05);
    }

    #[test]
    fn normal_mean_and_variance() {
        let mut e = engine(101);
        let xs: Vec<f64> = (0..N).map(|_| normal(&mut e)).collect();
        let (mean, var) = moments(&xs);
        assert!(mean.abs() < 0.01, "mean={mean}");
        assert!((var - 1.0).abs() < 0.02, "var={var}");
    }

    #[test]
    fn normal_symmetry_and_tail_mass() {
        let mut e = engine(102);
        let xs: Vec<f64> = (0..N).map(|_| normal(&mut e)).collect();
        let neg = xs.iter().filter(|&&x| x < 0.0).count() as f64 / N as f64;
        assert!((neg - 0.5).abs() < 0.01, "negative fraction={neg}");
        // P(|X| > 3) ≈ 0.0027.
        let tail = xs.iter().filter(|&&x| x.abs() > 3.0).count() as f64 / N as f64;
        assert!((tail - 0.0027).abs() < 0.0015, "tail={tail}");
        // Tail samples beyond R must occur (exercises normal_tail).
        assert!(xs.iter().any(|&x| x.abs() > NORMAL_R));
    }

    #[test]
    fn normal_quartiles() {
        let mut e = engine(103);
        let mut xs: Vec<f64> = (0..N).map(|_| normal(&mut e)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q = |p: f64| xs[(p * N as f64) as usize];
        assert!((q(0.25) + 0.6745).abs() < 0.02, "q25={}", q(0.25));
        assert!((q(0.75) - 0.6745).abs() < 0.02, "q75={}", q(0.75));
        assert!((q(0.975) - 1.96).abs() < 0.05, "q975={}", q(0.975));
    }

    #[test]
    fn exponential_mean_variance_positive() {
        let mut e = engine(104);
        let xs: Vec<f64> = (0..N).map(|_| exponential(&mut e)).collect();
        assert!(xs.iter().all(|&x| x >= 0.0));
        let (mean, var) = moments(&xs);
        assert!((mean - 1.0).abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
        // Median of Exp(1) is ln 2.
        let mut s = xs;
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = s[N / 2];
        assert!((med - std::f64::consts::LN_2).abs() < 0.02, "median={med}");
    }

    #[test]
    fn exponential_tail_beyond_r_occurs_with_correct_mass() {
        // P(X > R) = exp(-R) ≈ 4.54e-4; with 2M draws expect ~900.
        let mut e = engine(105);
        let m = 2_000_000;
        let tail = (0..m).filter(|_| exponential(&mut e) > EXP_R).count();
        let expected = m as f64 * (-EXP_R).exp();
        assert!(
            (tail as f64 - expected).abs() < 6.0 * expected.sqrt() + 30.0,
            "tail={tail} expected≈{expected}"
        );
    }

    /// Cross-check against the independent `rand_distr`-free baseline:
    /// Box–Muller from the `rand` crate's uniforms.
    #[test]
    fn normal_ks_against_box_muller() {
        use rand::{Rng as _, SeedableRng};
        let mut ours = engine(106);
        let mut xs: Vec<f64> = (0..50_000).map(|_| normal(&mut ours)).collect();
        let mut theirs_rng = rand::rngs::StdRng::seed_from_u64(999);
        let mut ys: Vec<f64> = (0..50_000)
            .map(|_| {
                let u1: f64 = theirs_rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = theirs_rng.gen();
                (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            })
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Two-sample KS statistic.
        let (mut i, mut j, mut d) = (0usize, 0usize, 0.0f64);
        while i < xs.len() && j < ys.len() {
            if xs[i] <= ys[j] {
                i += 1;
            } else {
                j += 1;
            }
            let fx = i as f64 / xs.len() as f64;
            let fy = j as f64 / ys.len() as f64;
            d = d.max((fx - fy).abs());
        }
        // Critical value at alpha=0.001 for n=m=50k is ~0.0123.
        assert!(d < 0.0123, "KS statistic {d}");
    }
}
