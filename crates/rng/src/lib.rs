//! # dreamsim-rng
//!
//! From-scratch random number generation substrate for the DReAMSim
//! simulation framework.
//!
//! The original DReAMSim (Nadeem et al., IPDPSW 2012) implements its own
//! `RNG` class "based on the Ziggurat Method \[Marsaglia & Tsang 2000a\]
//! using the algorithm described in \[Marsaglia & Tsang 2000b\] for
//! generating Gamma variables", providing "several random number
//! distributions, such as Poisson, Binomial, Gamma, Uniform random, etc."
//! This crate reproduces that substrate in safe Rust:
//!
//! * [`engine`] — the raw 32/64-bit generator cores (`rand_int32` in the
//!   paper's UML). [`SplitMix64`] for seeding, [`Xoshiro256StarStar`] as
//!   the default engine, and [`Shr3`], the 3-shift-register generator used
//!   in Marsaglia & Tsang's original Ziggurat reference implementation.
//! * [`ziggurat`] — standard normal and exponential variates via the
//!   Ziggurat method (256-layer tables for both densities, computed once
//!   at first use from the method's published layer-area constants).
//! * [`gamma`] — Marsaglia & Tsang's compact gamma generator
//!   (ACM TOMS 26(3), 2000).
//! * [`poisson`] — Knuth multiplication for small means and Hörmann's
//!   PTRS transformed-rejection for large means.
//! * [`binomial`] — Bernoulli summation, BINV inversion, and Hörmann's
//!   BTRS transformed rejection, selected by parameter regime.
//! * [`multinomial`] — conditional-binomial multinomial sampling.
//! * [`uniform`] — unbiased bounded integers (Lemire's method), uniform
//!   floats, and inclusive integer ranges (the form DReAMSim's Table II
//!   parameters use, e.g. node areas in `[1000..4000]`).
//! * [`discrete`] — weighted discrete sampling via Vose's alias method.
//!
//! The simulator proper depends only on this crate for randomness; the
//! external `rand` crate is used exclusively in this crate's test suite as
//! an independent statistical cross-check.
//!
//! ## Determinism
//!
//! Every generator is a small, `Clone`able value type with explicit seeding
//! and no global state, so simulation runs are reproducible bit-for-bit
//! given a seed, and parameter sweeps can derive independent per-run
//! streams with [`derive_stream`].
//!
//! ## Quick example
//!
//! ```
//! use dreamsim_rng::Rng;
//!
//! let mut rng = Rng::seed_from(42);
//! let area = rng.uniform_inclusive(1000, 4000);   // node TotalArea, Table II
//! assert!((1000..=4000).contains(&area));
//! let t = rng.gamma(2.0, 1.5);                    // shape 2, scale 1.5
//! assert!(t > 0.0);
//! let n = rng.poisson(7.5);                       // task batch size
//! let _ = (t, n, area);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binomial;
pub mod discrete;
pub mod engine;
pub mod gamma;
pub mod multinomial;
pub mod poisson;
pub mod special;
pub mod uniform;
pub mod ziggurat;

pub use engine::{derive_stream, RngCore, Shr3, SplitMix64, Xoshiro256StarStar};

/// The paper's `RNG` facade: one seeded generator exposing every
/// distribution the DReAMSim framework draws from.
///
/// Internally this couples the default engine ([`Xoshiro256StarStar`]) with
/// the Ziggurat tables. All distribution methods are also available as free
/// functions over any [`RngCore`] in the per-distribution modules; this
/// struct is the convenient front door mirroring the UML `RNG` class
/// (`poisson`, `binomial`, `gamma`, `multinom`, `rand_int32`).
#[derive(Clone, Debug)]
pub struct Rng {
    core: Xoshiro256StarStar,
}

impl Rng {
    /// Create a generator from a 64-bit seed. Any seed is valid; the seed
    /// is expanded through [`SplitMix64`] so even `0` and small integers
    /// yield well-mixed state.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        Self {
            core: Xoshiro256StarStar::seed_from(seed),
        }
    }

    /// Derive the `index`-th independent sub-stream of this generator's
    /// seed space. Used by the sweep runner to give each simulation run its
    /// own deterministic stream regardless of scheduling order.
    #[must_use]
    pub fn derive(seed: u64, index: u64) -> Self {
        Self {
            core: Xoshiro256StarStar::seed_from(derive_stream(seed, index)),
        }
    }

    /// The paper's `rand_int32()`: next raw 32-bit value.
    #[inline]
    pub fn rand_int32(&mut self) -> u32 {
        self.core.next_u32()
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn rand_int64(&mut self) -> u64 {
        self.core.next_u64()
    }

    /// Uniform float in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        uniform::f64_unit(&mut self.core)
    }

    /// Unbiased uniform integer in `[0, bound)`. Panics if `bound == 0`.
    #[inline]
    pub fn uniform_below(&mut self, bound: u64) -> u64 {
        uniform::below(&mut self.core, bound)
    }

    /// Unbiased uniform integer in the inclusive range `[lo, hi]`.
    /// Panics if `lo > hi`.
    #[inline]
    pub fn uniform_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        uniform::inclusive(&mut self.core, lo, hi)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        uniform::bernoulli(&mut self.core, p)
    }

    /// Standard normal variate via the Ziggurat method.
    #[inline]
    pub fn normal(&mut self) -> f64 {
        ziggurat::normal(&mut self.core)
    }

    /// Normal variate with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Standard exponential variate (mean 1) via the Ziggurat method.
    #[inline]
    pub fn exponential(&mut self) -> f64 {
        ziggurat::exponential(&mut self.core)
    }

    /// Exponential variate with the given mean (`1/rate`).
    #[inline]
    pub fn exponential_with_mean(&mut self, mean: f64) -> f64 {
        mean * self.exponential()
    }

    /// Gamma variate with the given `shape` and `scale`
    /// (Marsaglia–Tsang 2000). Panics if either parameter is not positive
    /// and finite.
    #[inline]
    pub fn gamma(&mut self, shape: f64, scale: f64) -> f64 {
        gamma::gamma(&mut self.core, shape, scale)
    }

    /// Poisson variate with the given mean.
    #[inline]
    pub fn poisson(&mut self, mean: f64) -> u64 {
        poisson::poisson(&mut self.core, mean)
    }

    /// Binomial variate: number of successes in `n` trials of
    /// probability `p`.
    #[inline]
    pub fn binomial(&mut self, p: f64, n: u64) -> u64 {
        binomial::binomial(&mut self.core, p, n)
    }

    /// Multinomial variate: distribute `n` trials over `probs.len()`
    /// categories with the given probabilities (normalized internally).
    #[inline]
    pub fn multinomial(&mut self, n: u64, probs: &[f64]) -> Vec<u64> {
        multinomial::multinomial(&mut self.core, n, probs)
    }

    /// Choose a uniformly random element index for a slice of length
    /// `len`. Panics if `len == 0`.
    #[inline]
    pub fn index(&mut self, len: usize) -> usize {
        uniform::below(&mut self.core, len as u64) as usize
    }

    /// Fisher–Yates shuffle of a slice, in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.uniform_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Borrow the underlying engine, for callers that want to drive a
    /// free-function distribution directly.
    #[inline]
    pub fn core_mut(&mut self) -> &mut Xoshiro256StarStar {
        &mut self.core
    }

    /// Capture the generator's complete state (four 64-bit words) for
    /// checkpointing. Restoring via [`Rng::from_state`] continues the
    /// stream bit-identically.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.core.state()
    }

    /// Rebuild a generator from a captured [`state`](Self::state).
    /// Returns `None` for the invalid all-zero state.
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Option<Self> {
        Xoshiro256StarStar::from_state(s).map(|core| Self { core })
    }
}

// Manual serde impls: the engine state is four u64 words, serialized as a
// plain JSON array. Distributions are stateless free functions over the
// core, so the word vector is the *entire* stream position.
impl serde::Serialize for Rng {
    fn to_value(&self) -> serde::Value {
        serde::Serialize::to_value(&self.state().to_vec())
    }
}

impl serde::Deserialize for Rng {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let words = <Vec<u64> as serde::Deserialize>::from_value(value)?;
        let s: [u64; 4] = words
            .try_into()
            .map_err(|_| serde::Error::custom("Rng: expected 4 state words"))?;
        Self::from_state(s).ok_or_else(|| serde::Error::custom("Rng: all-zero state is invalid"))
    }
}

impl RngCore for Rng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_is_deterministic_per_seed() {
        let mut a = Rng::seed_from(123);
        let mut b = Rng::seed_from(123);
        for _ in 0..1000 {
            assert_eq!(a.rand_int64(), b.rand_int64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.rand_int64() == b.rand_int64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derived_streams_are_independent_of_call_order() {
        let mut s3 = Rng::derive(99, 3);
        let mut s7 = Rng::derive(99, 7);
        let a3 = s3.rand_int64();
        let a7 = s7.rand_int64();
        // Recreate in the opposite order; values must not change.
        let mut t7 = Rng::derive(99, 7);
        let mut t3 = Rng::derive(99, 3);
        assert_eq!(a7, t7.rand_int64());
        assert_eq!(a3, t3.rand_int64());
    }

    #[test]
    fn uniform_inclusive_covers_table_ii_ranges() {
        let mut rng = Rng::seed_from(7);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..200_000 {
            let v = rng.uniform_inclusive(1, 50); // task arrival interval
            assert!((1..=50).contains(&v));
            seen_lo |= v == 1;
            seen_hi |= v == 50;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from(11);
        let mut xs: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clone_forks_identical_future() {
        let mut a = Rng::seed_from(5);
        a.rand_int64();
        let mut b = a.clone();
        assert_eq!(a.normal().to_bits(), b.normal().to_bits());
    }

    #[test]
    fn state_round_trip_restores_stream_position() {
        let mut a = Rng::seed_from(2026);
        for _ in 0..17 {
            a.rand_int64();
        }
        let saved = a.state();
        let expected: Vec<u64> = (0..32).map(|_| a.rand_int64()).collect();
        let mut b = Rng::from_state(saved).expect("saved state is valid");
        let got: Vec<u64> = (0..32).map(|_| b.rand_int64()).collect();
        assert_eq!(expected, got);
        assert!(Rng::from_state([0; 4]).is_none());
    }

    /// Save/restore round trip per distribution stream: after restoring
    /// from a mid-stream snapshot, every subsequent draw must be
    /// bit-identical to the uninterrupted stream (floats compared via
    /// `to_bits`, so even NaN payloads would have to match).
    macro_rules! round_trip_distribution {
        ($name:ident, $draw:expr) => {
            #[test]
            fn $name() {
                let draw: fn(&mut Rng) -> u64 = $draw;
                let mut a = Rng::seed_from(0xD15E);
                // Advance mid-stream so the snapshot is not the seed state.
                for _ in 0..23 {
                    draw(&mut a);
                }
                let snapshot = serde::Serialize::to_value(&a);
                let expected: Vec<u64> = (0..64).map(|_| draw(&mut a)).collect();
                let mut b = <Rng as serde::Deserialize>::from_value(&snapshot)
                    .expect("serialized Rng state restores");
                let got: Vec<u64> = (0..64).map(|_| draw(&mut b)).collect();
                assert_eq!(expected, got);
            }
        };
    }

    round_trip_distribution!(round_trip_ziggurat_normal, |r| r.normal().to_bits());
    round_trip_distribution!(round_trip_ziggurat_exponential, |r| r
        .exponential()
        .to_bits());
    round_trip_distribution!(round_trip_gamma, |r| r.gamma(2.0, 1.5).to_bits());
    round_trip_distribution!(round_trip_poisson, |r| r.poisson(7.5));
    round_trip_distribution!(round_trip_uniform, |r| r.uniform_inclusive(1, 50));
}
