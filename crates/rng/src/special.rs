//! Special functions needed by the discrete-distribution rejection
//! algorithms: the log-gamma function and log-factorials.

/// Natural log of the gamma function, via the Lanczos approximation
/// (g = 7, 9 coefficients; |relative error| < 1e-13 on the positive axis).
///
/// # Panics
/// Panics for non-positive or non-finite input (the simulator only ever
/// needs `ln Γ` on the positive axis).
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(
        x > 0.0 && x.is_finite(),
        "ln_gamma requires positive finite input, got {x}"
    );
    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = C[0];
    for (i, &c) in C.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// `ln(k!)`, exact-tabulated for `k < 128`, `ln_gamma(k+1)` beyond.
#[must_use]
pub fn ln_factorial(k: u64) -> f64 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; 128]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0.0f64; 128];
        let mut acc = 0.0f64;
        for (k, slot) in t.iter_mut().enumerate() {
            if k > 0 {
                acc += (k as f64).ln();
            }
            *slot = acc;
        }
        t
    });
    if (k as usize) < table.len() {
        table[k as usize]
    } else {
        ln_gamma(k as f64 + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_integer_values_match_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..20u32 {
            if n > 1 {
                fact *= f64::from(n - 1);
            }
            let lg = ln_gamma(f64::from(n));
            assert!(
                (lg - fact.ln()).abs() < 1e-10 * (1.0 + fact.ln().abs()),
                "n={n}: {lg} vs {}",
                fact.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(pi).
        let lg = ln_gamma(0.5);
        assert!((lg - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
        // Γ(3/2) = sqrt(pi)/2.
        let lg = ln_gamma(1.5);
        let expect = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((lg - expect).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // ln Γ(x+1) = ln Γ(x) + ln x, across a wide range.
        for &x in &[0.1, 0.7, 1.3, 2.5, 10.0, 123.456, 1e4] {
            let lhs = ln_gamma(x + 1.0);
            let rhs = ln_gamma(x) + x.ln();
            assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()), "x={x}");
        }
    }

    #[test]
    fn ln_gamma_large_argument_stirling_regime() {
        // Stirling: ln Γ(x) ≈ x ln x − x − ½ln(x/2π); relative agreement.
        let x: f64 = 1e6;
        let stirling = x * x.ln() - x - 0.5 * (x / (2.0 * std::f64::consts::PI)).ln();
        let lg = ln_gamma(x);
        assert!((lg - stirling).abs() / lg < 1e-7);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn ln_gamma_rejects_zero() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn ln_factorial_table_and_tail_agree_at_boundary() {
        for k in [0u64, 1, 5, 126, 127, 128, 129, 1000] {
            let direct = ln_gamma(k as f64 + 1.0);
            assert!(
                (ln_factorial(k) - direct).abs() < 1e-9 * (1.0 + direct.abs()),
                "k={k}"
            );
        }
    }
}
