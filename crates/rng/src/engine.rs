//! Raw pseudo-random generator cores.
//!
//! DReAMSim's UML exposes a single `rand_int32()` primitive that all
//! distributions are built on. We keep the same layering: a tiny
//! [`RngCore`] trait supplying raw bits, and everything else derived from
//! it. Three engines are provided:
//!
//! * [`SplitMix64`] — Steele et al.'s 64-bit mixer. Trivially seedable from
//!   any value; used to expand seeds for the other engines and to derive
//!   independent sweep streams.
//! * [`Xoshiro256StarStar`] — Blackman & Vigna's general-purpose engine.
//!   The default core for simulations: fast, 256-bit state, passes BigCrush.
//! * [`Shr3`] — Marsaglia's 3-shift-register generator, the `SHR3` macro
//!   from the original Ziggurat reference code. Kept for historical
//!   fidelity and cross-checks; **not** recommended as a primary engine
//!   (32-bit state, fails modern test batteries).

/// Minimal source of uniform random bits.
///
/// Only [`next_u64`](RngCore::next_u64) is required; `next_u32` defaults to
/// the upper half of a 64-bit draw (the upper bits of xoshiro/splitmix
/// outputs are the strongest).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// SplitMix64 (Steele, Lea & Flood 2014). One 64-bit word of state; each
/// step adds the golden-gamma constant and mixes. Primarily a seed
/// expander here.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Construct from any 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

/// The SplitMix64 finalizer: a bijective mix of one 64-bit word.
#[inline]
#[must_use]
pub fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        splitmix64_mix(self.state)
    }
}

/// xoshiro256** 1.0 (Blackman & Vigna 2018). The default simulation engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seed via SplitMix64 expansion, per the authors' recommendation.
    /// Guarantees a nonzero state for every seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // All-zero state is a fixed point; SplitMix64 cannot produce four
        // consecutive zeros, but keep the guard explicit for clarity.
        debug_assert!(s.iter().any(|&w| w != 0));
        Self { s }
    }

    /// Expose the raw 256-bit state for checkpointing.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild an engine from a previously captured [`state`](Self::state).
    ///
    /// Returns `None` for the all-zero state (the lone fixed point of the
    /// transition function, which `seed_from` can never produce).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Option<Self> {
        if s.iter().all(|&w| w == 0) {
            return None;
        }
        Some(Self { s })
    }

    /// The `jump()` function: advances the stream by 2^128 steps, yielding
    /// a non-overlapping subsequence. Useful for long-lived parallel
    /// streams sharing one logical seed.
    pub fn jump(&mut self) {
        const JUMP: [u64; 4] = [
            0x180e_c6d3_3cfd_0aba,
            0xd5a6_1266_f0c9_392c,
            0xa958_2618_e03f_c9aa,
            0x39ab_dc45_29b1_661c,
        ];
        let mut acc = [0u64; 4];
        for word in JUMP {
            for bit in 0..64 {
                if (word >> bit) & 1 == 1 {
                    for (a, s) in acc.iter_mut().zip(self.s.iter()) {
                        *a ^= s;
                    }
                }
                self.next_u64();
            }
        }
        self.s = acc;
    }
}

impl RngCore for Xoshiro256StarStar {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Marsaglia's SHR3: the 3-shift-register generator used by the original
/// Ziggurat reference implementation (`jsr ^= jsr<<13; jsr ^= jsr>>17;
/// jsr ^= jsr<<5`). Period 2^32−1 over nonzero 32-bit states.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Shr3 {
    jsr: u32,
}

impl Shr3 {
    /// Construct from a seed; a zero seed (the lone fixed point) is
    /// remapped to the reference code's default constant.
    #[must_use]
    pub fn new(seed: u32) -> Self {
        Self {
            jsr: if seed == 0 { 123_456_789 } else { seed },
        }
    }

    /// Next 32-bit value (the `SHR3` macro itself).
    #[inline]
    pub fn next(&mut self) -> u32 {
        self.jsr ^= self.jsr << 13;
        self.jsr ^= self.jsr >> 17;
        self.jsr ^= self.jsr << 5;
        self.jsr
    }
}

impl RngCore for Shr3 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let hi = u64::from(self.next());
        let lo = u64::from(self.next());
        (hi << 32) | lo
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next()
    }
}

/// Derive the seed of the `index`-th independent sub-stream of `seed`.
///
/// Mixing `(seed, index)` through the SplitMix64 finalizer twice decouples
/// nearby indices completely, so a sweep over runs `0..n` produces streams
/// with no detectable cross-correlation, independent of thread scheduling.
#[must_use]
pub fn derive_stream(seed: u64, index: u64) -> u64 {
    splitmix64_mix(splitmix64_mix(seed ^ 0x6a09_e667_f3bc_c909).wrapping_add(index))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // reference implementation.
        let mut sm = SplitMix64::new(1_234_567);
        let v: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(v[0], 6_457_827_717_110_365_317);
        assert_eq!(v[1], 3_203_168_211_198_807_973);
        assert_eq!(v[2], 9_817_491_932_198_370_423);
    }

    #[test]
    fn xoshiro_nonzero_state_for_any_seed() {
        for seed in [0u64, 1, u64::MAX, 42] {
            let e = Xoshiro256StarStar::seed_from(seed);
            assert!(e.s.iter().any(|&w| w != 0), "seed {seed}");
        }
    }

    #[test]
    fn xoshiro_jump_changes_stream_but_stays_deterministic() {
        let mut a = Xoshiro256StarStar::seed_from(9);
        let mut b = a.clone();
        b.jump();
        assert_ne!(a.next_u64(), b.next_u64());
        let mut c = Xoshiro256StarStar::seed_from(9);
        c.jump();
        let mut d = Xoshiro256StarStar::seed_from(9);
        d.jump();
        assert_eq!(c.next_u64(), d.next_u64());
    }

    #[test]
    fn shr3_period_smoke_and_zero_seed_guard() {
        let mut g = Shr3::new(0);
        let first = g.next();
        assert_ne!(first, 0, "zero state would be a fixed point");
        // The sequence must not immediately cycle.
        let mut seen = vec![first];
        for _ in 0..1000 {
            let v = g.next();
            assert!(v != 0);
            seen.push(v);
        }
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 1001, "no repeats within 1001 draws");
    }

    #[test]
    fn shr3_matches_hand_computed_step() {
        // One step of the macro computed by hand for jsr = 1.
        let mut g = Shr3::new(1);
        let mut jsr: u32 = 1;
        jsr ^= jsr << 13;
        jsr ^= jsr >> 17;
        jsr ^= jsr << 5;
        assert_eq!(g.next(), jsr);
    }

    #[test]
    fn derive_stream_decouples_adjacent_indices() {
        let a = derive_stream(77, 0);
        let b = derive_stream(77, 1);
        // Hamming distance should be near 32 for well-mixed outputs.
        let dist = (a ^ b).count_ones();
        assert!((10..=54).contains(&dist), "dist={dist}");
    }

    #[test]
    fn next_u32_uses_high_bits() {
        let mut sm = SplitMix64::new(3);
        let mut sm2 = SplitMix64::new(3);
        let w = sm.next_u64();
        assert_eq!(sm2.next_u32(), (w >> 32) as u32);
    }

    #[test]
    fn trait_object_and_reference_forwarding() {
        fn draw(r: &mut dyn RngCore) -> u64 {
            r.next_u64()
        }
        let mut e = Xoshiro256StarStar::seed_from(4);
        let mut f = e.clone();
        assert_eq!(draw(&mut e), f.next_u64());
    }

    /// Cross-check the mean of raw 64-bit output against the `rand` crate's
    /// uniform distribution to catch gross bias (independent implementation).
    #[test]
    fn mean_of_unit_floats_near_half() {
        let mut e = Xoshiro256StarStar::seed_from(20_240_101);
        let n = 100_000;
        let sum: f64 = (0..n)
            .map(|_| (e.next_u64() >> 11) as f64 / (1u64 << 53) as f64)
            .sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    }
}
