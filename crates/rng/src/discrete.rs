//! Weighted discrete sampling via Vose's alias method: O(k) construction,
//! O(1) per draw. DReAMSim uses this for non-uniform choices among
//! processor-configuration types and workload mixes.

use crate::engine::RngCore;
use crate::uniform;

/// Pre-built alias table over `k` categories.
///
/// ```
/// use dreamsim_rng::{discrete::AliasTable, Xoshiro256StarStar};
///
/// let table = AliasTable::new(&[10.0, 30.0, 60.0]).unwrap();
/// let mut rng = Xoshiro256StarStar::seed_from(1);
/// let i = table.sample(&mut rng);
/// assert!(i < 3);
/// ```
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance probability for each slot.
    prob: Vec<f64>,
    /// Alias category used when the acceptance test fails.
    alias: Vec<usize>,
}

/// Error constructing an [`AliasTable`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AliasError {
    /// The weight slice was empty.
    Empty,
    /// A weight was negative, NaN, or infinite.
    InvalidWeight(usize),
    /// All weights were zero.
    ZeroMass,
}

impl std::fmt::Display for AliasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "alias table requires at least one weight"),
            Self::InvalidWeight(i) => write!(f, "weight {i} is negative or non-finite"),
            Self::ZeroMass => write!(f, "all weights are zero"),
        }
    }
}

impl std::error::Error for AliasError {}

impl AliasTable {
    /// Build a table from nonnegative weights (not necessarily
    /// normalized).
    pub fn new(weights: &[f64]) -> Result<Self, AliasError> {
        if weights.is_empty() {
            return Err(AliasError::Empty);
        }
        for (i, &w) in weights.iter().enumerate() {
            if !(w >= 0.0) || !w.is_finite() {
                return Err(AliasError::InvalidWeight(i));
            }
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(AliasError::ZeroMass);
        }
        let k = weights.len();
        // Scaled weights: mean 1.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * k as f64 / total).collect();
        let mut small: Vec<usize> = Vec::with_capacity(k);
        let mut large: Vec<usize> = Vec::with_capacity(k);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut prob = vec![1.0f64; k];
        let mut alias: Vec<usize> = (0..k).collect();
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] -= 1.0 - scaled[s];
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Remaining entries (numerical leftovers) keep prob = 1.
        Ok(Self { prob, alias })
    }

    /// Number of categories.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draw a category index.
    pub fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
        let i = uniform::below(rng, self.prob.len() as u64) as usize;
        if uniform::f64_unit(rng) < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Xoshiro256StarStar;

    fn engine(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from(seed)
    }

    #[test]
    fn construction_errors() {
        assert_eq!(AliasTable::new(&[]).unwrap_err(), AliasError::Empty);
        assert_eq!(
            AliasTable::new(&[1.0, -0.5]).unwrap_err(),
            AliasError::InvalidWeight(1)
        );
        assert_eq!(
            AliasTable::new(&[1.0, f64::NAN]).unwrap_err(),
            AliasError::InvalidWeight(1)
        );
        assert_eq!(
            AliasTable::new(&[1.0, f64::INFINITY]).unwrap_err(),
            AliasError::InvalidWeight(1)
        );
        assert_eq!(
            AliasTable::new(&[0.0, 0.0]).unwrap_err(),
            AliasError::ZeroMass
        );
    }

    #[test]
    fn single_category() {
        let t = AliasTable::new(&[5.0]).unwrap();
        let mut e = engine(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut e), 0);
        }
    }

    #[test]
    fn zero_weight_categories_never_drawn() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 2.0]).unwrap();
        let mut e = engine(2);
        for _ in 0..100_000 {
            let i = t.sample(&mut e);
            assert!(i == 1 || i == 3, "drew zero-weight category {i}");
        }
    }

    #[test]
    fn frequencies_match_weights() {
        let weights = [10.0, 20.0, 30.0, 40.0];
        let t = AliasTable::new(&weights).unwrap();
        let mut e = engine(3);
        let n = 400_000;
        let mut counts = [0u64; 4];
        for _ in 0..n {
            counts[t.sample(&mut e)] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let got = c as f64 / n as f64;
            let want = weights[i] / total;
            assert!((got - want).abs() < 0.005, "cat {i}: {got} vs {want}");
        }
    }

    #[test]
    fn uniform_weights_behave_like_below() {
        let t = AliasTable::new(&[1.0; 10]).unwrap();
        let mut e = engine(4);
        let n = 200_000;
        let mut counts = [0u64; 10];
        for _ in 0..n {
            counts[t.sample(&mut e)] += 1;
        }
        let expected = n as f64 / 10.0;
        let chi2: f64 = counts
            .iter()
            .map(|&c| (c as f64 - expected).powi(2) / expected)
            .sum();
        // 9 dof, 0.999 quantile ≈ 27.88.
        assert!(chi2 < 27.88, "chi2={chi2}");
    }

    #[test]
    fn extreme_weight_ratios() {
        let t = AliasTable::new(&[1e-12, 1.0]).unwrap();
        let mut e = engine(5);
        let hits0 = (0..1_000_000).filter(|_| t.sample(&mut e) == 0).count();
        assert!(hits0 <= 3, "tiny category drawn {hits0} times");
    }

    #[test]
    fn many_categories_no_bias_sweep() {
        // A ramp of weights 1..=100.
        let weights: Vec<f64> = (1..=100).map(f64::from).collect();
        let t = AliasTable::new(&weights).unwrap();
        assert_eq!(t.len(), 100);
        assert!(!t.is_empty());
        let mut e = engine(6);
        let n = 1_000_000;
        let mut counts = vec![0u64; 100];
        for _ in 0..n {
            counts[t.sample(&mut e)] += 1;
        }
        let total: f64 = weights.iter().sum();
        // Compare average absolute relative deviation.
        let mut dev = 0.0;
        for (i, &c) in counts.iter().enumerate() {
            let want = weights[i] / total * n as f64;
            dev += ((c as f64 - want) / want).abs();
        }
        assert!(dev / 100.0 < 0.05, "mean rel deviation {}", dev / 100.0);
    }
}
