//! Binomial variates.
//!
//! Regime selection:
//!
//! * `n ≤ 25` — direct Bernoulli summation (exact, trivially correct).
//! * `n·min(p,q) < 10` — BINV inversion (Kachitvichyanukul & Schmeiser):
//!   walk the CDF from 0; O(n·p) expected steps.
//! * otherwise — Hörmann's BTRS transformed rejection (*The generation of
//!   binomial random variates*, J. Statist. Comput. Simul. 46, 1993):
//!   O(1) expected time with an exact log-density test.
//!
//! All regimes reduce `p > 1/2` to the mirrored problem `n − Bin(n, 1−p)`.

use crate::engine::RngCore;
use crate::special::ln_gamma;
use crate::uniform;

/// Binomial variate: successes in `n` trials with probability `p`.
///
/// `p` outside `[0, 1]` is clamped; NaN is treated as 0.
pub fn binomial<R: RngCore>(rng: &mut R, p: f64, n: u64) -> u64 {
    if n == 0 || !(p > 0.0) {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if p > 0.5 {
        return n - binomial_half(rng, 1.0 - p, n);
    }
    binomial_half(rng, p, n)
}

/// Core sampler, requires `0 < p <= 1/2`.
fn binomial_half<R: RngCore>(rng: &mut R, p: f64, n: u64) -> u64 {
    debug_assert!(p > 0.0 && p <= 0.5);
    if n <= 25 {
        return (0..n).filter(|_| uniform::f64_unit(rng) < p).count() as u64;
    }
    if (n as f64) * p < 10.0 {
        binv(rng, p, n)
    } else {
        btrs(rng, p, n)
    }
}

/// BINV: CDF inversion from zero.
fn binv<R: RngCore>(rng: &mut R, p: f64, n: u64) -> u64 {
    let q = 1.0 - p;
    let s = p / q;
    // r = q^n; with n*p < 10 this is >= ~e^{-10}/poly, comfortably normal.
    let mut r = q.powf(n as f64);
    let mut u = uniform::f64_unit(rng);
    let mut x = 0u64;
    loop {
        if u < r {
            return x;
        }
        u -= r;
        x += 1;
        if x > n {
            // Float underflow exhausted the PMF mass; clamp to the mode
            // region by restarting (probability ~2^-53).
            r = q.powf(n as f64);
            u = uniform::f64_unit(rng);
            x = 0;
            continue;
        }
        r *= (n - x + 1) as f64 / x as f64 * s;
    }
}

/// BTRS: transformed rejection with squeeze, for `n·p ≥ 10`, `p ≤ 1/2`.
fn btrs<R: RngCore>(rng: &mut R, p: f64, n: u64) -> u64 {
    let nf = n as f64;
    let q = 1.0 - p;
    let spq = (nf * p * q).sqrt();
    let b = 1.15 + 2.53 * spq;
    let a = -0.0873 + 0.0248 * b + 0.01 * p;
    let c = nf * p + 0.5;
    let v_r = 0.92 - 4.2 / b;
    let alpha = (2.83 + 5.1 / b) * spq;
    let lpq = (p / q).ln();
    let m = ((nf + 1.0) * p).floor();
    let h = ln_gamma(m + 1.0) + ln_gamma(nf - m + 1.0);
    loop {
        let u = uniform::f64_unit(rng) - 0.5;
        let v = uniform::f64_open(rng);
        let us = 0.5 - u.abs();
        let kf = ((2.0 * a / us + b) * u + c).floor();
        if kf < 0.0 || kf > nf {
            continue;
        }
        if us >= 0.07 && v <= v_r {
            return kf as u64; // squeeze acceptance
        }
        let lv = (v * alpha / (a / (us * us) + b)).ln();
        let rhs = h - ln_gamma(kf + 1.0) - ln_gamma(nf - kf + 1.0) + (kf - m) * lpq;
        if lv <= rhs {
            return kf as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Xoshiro256StarStar;

    fn engine(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from(seed)
    }

    fn sample(seed: u64, p: f64, n: u64, draws: usize) -> Vec<u64> {
        let mut e = engine(seed);
        (0..draws).map(|_| binomial(&mut e, p, n)).collect()
    }

    fn mean_var(xs: &[u64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let m = xs.iter().map(|&x| x as f64).sum::<f64>() / n;
        let v = xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / n;
        (m, v)
    }

    #[test]
    fn edge_cases() {
        let mut e = engine(1);
        assert_eq!(binomial(&mut e, 0.5, 0), 0);
        assert_eq!(binomial(&mut e, 0.0, 100), 0);
        assert_eq!(binomial(&mut e, -0.5, 100), 0);
        assert_eq!(binomial(&mut e, f64::NAN, 100), 0);
        assert_eq!(binomial(&mut e, 1.0, 100), 100);
        assert_eq!(binomial(&mut e, 1.5, 100), 100);
    }

    #[test]
    fn values_never_exceed_n() {
        let mut e = engine(2);
        for &(p, n) in &[(0.3, 5u64), (0.5, 40), (0.01, 10_000), (0.7, 1_000)] {
            for _ in 0..20_000 {
                assert!(binomial(&mut e, p, n) <= n);
            }
        }
    }

    #[test]
    fn moments_bernoulli_sum_regime() {
        let xs = sample(3, 0.3, 20, 200_000);
        let (m, v) = mean_var(&xs);
        assert!((m - 6.0).abs() < 0.03, "mean={m}");
        assert!((v - 4.2).abs() < 0.08, "var={v}");
    }

    #[test]
    fn moments_binv_regime() {
        // n=1000, p=0.005 → np=5 < 10, n > 25 → BINV.
        let xs = sample(4, 0.005, 1000, 200_000);
        let (m, v) = mean_var(&xs);
        assert!((m - 5.0).abs() < 0.03, "mean={m}");
        assert!((v - 4.975).abs() < 0.08, "var={v}");
    }

    #[test]
    fn moments_btrs_regime() {
        for (seed, p, n) in [(5u64, 0.5, 100u64), (6, 0.1, 1_000), (7, 0.4, 10_000)] {
            let xs = sample(seed, p, n, 200_000);
            let (m, v) = mean_var(&xs);
            let em = n as f64 * p;
            let ev = em * (1.0 - p);
            assert!((m - em).abs() / em < 0.005, "p={p} n={n}: mean {m} vs {em}");
            assert!((v - ev).abs() / ev < 0.03, "p={p} n={n}: var {v} vs {ev}");
        }
    }

    #[test]
    fn mirrored_p_symmetry() {
        // Bin(n, p) and n − Bin(n, 1−p) are identically distributed.
        let a = sample(8, 0.8, 500, 200_000);
        let b: Vec<u64> = sample(9, 0.2, 500, 200_000)
            .iter()
            .map(|&x| 500 - x)
            .collect();
        let (ma, va) = mean_var(&a);
        let (mb, vb) = mean_var(&b);
        assert!((ma - mb).abs() < 0.1, "{ma} vs {mb}");
        assert!((va - vb).abs() / vb < 0.03, "{va} vs {vb}");
    }

    #[test]
    fn pmf_chi_squared_small_n() {
        // Exact PMF check for n=10, p=0.35.
        let (n, p) = (10u64, 0.35f64);
        let xs = sample(10, p, n, 300_000);
        let mut counts = [0u64; 11];
        for &x in &xs {
            counts[x as usize] += 1;
        }
        // PMF via the recurrence from k=0.
        let mut pmf = vec![0.0f64; 11];
        pmf[0] = (1.0 - p).powi(10);
        for k in 1..=10usize {
            pmf[k] = pmf[k - 1] * ((n as usize - k + 1) as f64 / k as f64) * (p / (1.0 - p));
        }
        let total = xs.len() as f64;
        let chi2: f64 = counts
            .iter()
            .zip(&pmf)
            .map(|(&c, &q)| {
                let e = q * total;
                (c as f64 - e).powi(2) / e
            })
            .sum();
        // 10 dof, 0.999 quantile ≈ 29.59.
        assert!(chi2 < 29.59, "chi2={chi2}");
    }

    #[test]
    fn regimes_agree_at_binv_btrs_boundary() {
        // np just below / above 10 with matched parameters.
        let a = sample(11, 9.9 / 1000.0, 1000, 300_000);
        let b = sample(12, 10.1 / 1000.0, 1000, 300_000);
        let (ma, _) = mean_var(&a);
        let (mb, _) = mean_var(&b);
        assert!((mb - ma - 0.2).abs() < 0.05, "ma={ma} mb={mb}");
    }

    #[test]
    fn poisson_limit_of_binomial() {
        // n large, p small with np = 4: Bin ≈ Poisson(4).
        let xs = sample(13, 4.0 / 100_000.0, 100_000, 200_000);
        let (m, v) = mean_var(&xs);
        assert!((m - 4.0).abs() < 0.03, "mean={m}");
        assert!((v - 4.0).abs() < 0.08, "var={v}");
    }
}
