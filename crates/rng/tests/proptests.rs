//! Property tests for the RNG substrate: range, determinism, and
//! distribution-shape invariants under arbitrary seeds and parameters.

use dreamsim_rng::{binomial, discrete::AliasTable, gamma, multinomial, poisson, uniform};
use dreamsim_rng::{derive_stream, Rng, RngCore, Xoshiro256StarStar};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn uniform_below_always_in_range(seed: u64, bound in 1u64..u64::MAX) {
        let mut e = Xoshiro256StarStar::seed_from(seed);
        for _ in 0..32 {
            prop_assert!(uniform::below(&mut e, bound) < bound);
        }
    }

    #[test]
    fn uniform_inclusive_always_in_range(seed: u64, lo: u64, span in 0u64..1_000_000) {
        let hi = lo.saturating_add(span);
        let mut e = Xoshiro256StarStar::seed_from(seed);
        for _ in 0..32 {
            let v = uniform::inclusive(&mut e, lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }

    #[test]
    fn unit_floats_in_half_open_interval(seed: u64) {
        let mut e = Xoshiro256StarStar::seed_from(seed);
        for _ in 0..64 {
            let v = uniform::f64_unit(&mut e);
            prop_assert!((0.0..1.0).contains(&v));
            let w = uniform::f64_open(&mut e);
            prop_assert!(w > 0.0 && w < 1.0);
        }
    }

    #[test]
    fn gamma_always_positive_and_finite(
        seed: u64,
        shape in 0.05f64..50.0,
        scale in 0.05f64..50.0,
    ) {
        let mut e = Xoshiro256StarStar::seed_from(seed);
        for _ in 0..16 {
            let g = gamma::gamma(&mut e, shape, scale);
            prop_assert!(g.is_finite() && g > 0.0, "gamma({shape},{scale}) = {g}");
        }
    }

    #[test]
    fn poisson_never_panics_and_is_finite(seed: u64, mean in 0.0f64..5_000.0) {
        let mut e = Xoshiro256StarStar::seed_from(seed);
        let v = poisson::poisson(&mut e, mean);
        // Crude tail bound: 10 sigma above the mean.
        prop_assert!((v as f64) < mean + 10.0 * mean.sqrt() + 50.0);
    }

    #[test]
    fn binomial_bounded_by_n(seed: u64, p in -0.2f64..1.2, n in 0u64..5_000) {
        let mut e = Xoshiro256StarStar::seed_from(seed);
        prop_assert!(binomial::binomial(&mut e, p, n) <= n);
    }

    #[test]
    fn multinomial_conserves_total(
        seed: u64,
        n in 0u64..10_000,
        weights in prop::collection::vec(0.0f64..10.0, 1..8),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let mut e = Xoshiro256StarStar::seed_from(seed);
        let counts = multinomial::multinomial(&mut e, n, &weights);
        prop_assert_eq!(counts.iter().sum::<u64>(), n);
        for (i, (&c, &w)) in counts.iter().zip(&weights).enumerate() {
            if w == 0.0 {
                prop_assert_eq!(c, 0, "zero-weight category {} drawn", i);
            }
        }
    }

    #[test]
    fn alias_table_never_yields_zero_weight_category(
        seed: u64,
        weights in prop::collection::vec(0.0f64..10.0, 1..10),
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let t = AliasTable::new(&weights).unwrap();
        let mut e = Xoshiro256StarStar::seed_from(seed);
        for _ in 0..64 {
            let i = t.sample(&mut e);
            prop_assert!(i < weights.len());
            prop_assert!(weights[i] > 0.0, "category {i} has zero weight");
        }
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive(seed: u64, index in 0u64..1_000) {
        let a = derive_stream(seed, index);
        let b = derive_stream(seed, index);
        prop_assert_eq!(a, b);
        let c = derive_stream(seed, index.wrapping_add(1));
        prop_assert_ne!(a, c);
    }

    #[test]
    fn facade_draws_are_replayable(seed: u64) {
        let mut a = Rng::seed_from(seed);
        let mut b = Rng::seed_from(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
            prop_assert_eq!(a.normal().to_bits(), b.normal().to_bits());
            prop_assert_eq!(a.exponential().to_bits(), b.exponential().to_bits());
            prop_assert_eq!(a.poisson(3.0), b.poisson(3.0));
        }
    }

    #[test]
    fn normal_and_exponential_are_finite(seed: u64) {
        let mut r = Rng::seed_from(seed);
        for _ in 0..64 {
            prop_assert!(r.normal().is_finite());
            let e = r.exponential();
            prop_assert!(e.is_finite() && e >= 0.0);
        }
    }
}
