//! Search-backend comparison: the paper-faithful linear list walks vs
//! the indexed backend (sorted config index + area-ordered node sets),
//! which answers every query identically — byte-identical reports,
//! identical model step counts — while spending less wall-clock time
//! per search. `dreamsim bench-search` produces the same numbers
//! offline (BENCH_search.json); this target adds Criterion statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use dreamsim_bench::{BENCH_SEED, BENCH_TASKS};
use dreamsim_model::SearchBackend;
use dreamsim_sweep::bench::{end_to_end_point, populated_store, search_workout};
use std::hint::black_box;

fn search_backends(c: &mut Criterion) {
    // Cross-check once before timing anything: both backends must agree
    // on every probe of the workout (the checksum folds results and
    // charged steps).
    for nodes in [100, 200] {
        let lin = populated_store(nodes, SearchBackend::Linear);
        let idx = populated_store(nodes, SearchBackend::Indexed);
        assert_eq!(
            search_workout(&lin, 64),
            search_workout(&idx, 64),
            "backends disagree at {nodes} nodes"
        );
    }

    let mut group = c.benchmark_group("search_micro");
    for nodes in [100, 200] {
        for backend in [SearchBackend::Linear, SearchBackend::Indexed] {
            let rm = populated_store(nodes, backend);
            group.bench_function(format!("{nodes}n_{backend}"), |b| {
                b.iter(|| black_box(search_workout(black_box(&rm), 16)));
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("search_end_to_end");
    group.sample_size(10);
    let tasks = *BENCH_TASKS.last().unwrap();
    for nodes in [100, 200] {
        group.bench_function(format!("{nodes}n_t{tasks}"), |b| {
            b.iter(|| {
                let p = end_to_end_point(black_box(nodes), black_box(tasks), BENCH_SEED);
                assert!(p.reports_identical);
                black_box((p.linear_ns, p.indexed_ns))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, search_backends);
criterion_main!(benches);
