//! Hot-path mutation cost of the node/slot store: the legacy
//! array-of-structs `Node` objects against the struct-of-arrays
//! `NodeStore` (DESIGN.md §18), plus the full `ResourceManager`
//! mutation path (which adds idle/busy list splicing on top of the
//! store writes).
//!
//! The workout is the same deterministic place → run → complete → evict
//! cycle on both layouts, and both sides fold their results into a
//! checksum that must agree — asserted before anything is timed, so a
//! layout that drifted behaviourally can never post a number.

use criterion::{criterion_group, criterion_main, Criterion};
use dreamsim_model::{
    Config, ConfigId, Node, NodeId, NodeStore, ResourceManager, StepCounter, TaskId,
};
use std::hint::black_box;

const NODE_COUNTS: [usize; 2] = [1_000, 100_000];

fn configs() -> Vec<Config> {
    (0..16)
        .map(|i| Config::new(ConfigId(i as u32), 100 + ((i as u64 * 211) % 900), 10))
        .collect()
}

fn nodes(count: usize) -> Vec<Node> {
    (0..count)
        .map(|i| Node::new(NodeId::from_index(i), 500 + ((i as u64 * 307) % 2500), 2))
        .collect()
}

/// One deterministic mutation cycle per visited node: place an instance,
/// start a task on it, complete the task, then evict the slot. Returns a
/// checksum over every observed slot index and config id.
fn aos_workout(nodes: &mut [Node], configs: &[Config], rounds: usize) -> u64 {
    let mut acc = 0u64;
    for r in 0..rounds {
        for (i, node) in nodes.iter_mut().enumerate() {
            let cfg = &configs[(i + r) % configs.len()];
            let Ok(slot) = node.send_bitstream(cfg) else {
                continue;
            };
            acc = acc.wrapping_add(u64::from(slot) + 1);
            node.add_task(slot, TaskId((i % 1024) as u32)).unwrap();
            let t = node.remove_task(slot).unwrap();
            acc = acc.wrapping_add(u64::from(t.0));
            let c = node.evict_slot(slot).unwrap();
            acc = acc.wrapping_add(u64::from(c.0) + 1);
        }
    }
    acc
}

/// The same cycle against the SoA store (flat columns, one store for
/// every node).
fn soa_workout(store: &mut NodeStore, configs: &[Config], rounds: usize) -> u64 {
    let mut acc = 0u64;
    for r in 0..rounds {
        for i in 0..store.len() {
            let cfg = &configs[(i + r) % configs.len()];
            let Ok(slot) = store.send_bitstream(i, cfg) else {
                continue;
            };
            acc = acc.wrapping_add(u64::from(slot) + 1);
            store.add_task(i, slot, TaskId((i % 1024) as u32)).unwrap();
            let t = store.remove_task(i, slot).unwrap();
            acc = acc.wrapping_add(u64::from(t.0));
            let c = store.evict_slot(i, slot).unwrap();
            acc = acc.wrapping_add(u64::from(c.0) + 1);
        }
    }
    acc
}

/// The manager-level cycle: configure (idle-list push), evict idle
/// instances back out (idle-list splice) — the store mutations plus the
/// `ConfigLists` bookkeeping the scheduler actually pays for.
fn rm_workout(rm: &mut ResourceManager, rounds: usize) -> u64 {
    let mut steps = StepCounter::new();
    let mut acc = 0u64;
    for r in 0..rounds {
        for i in 0..rm.num_nodes() {
            let node = NodeId::from_index(i);
            let cfg = ConfigId(((i + r) % 16) as u32);
            let Ok(entry) = rm.configure_slot(node, cfg, &mut steps) else {
                continue;
            };
            acc = acc.wrapping_add(u64::from(entry.slot) + 1);
            rm.evict_idle_slots(node, &[entry.slot], &mut steps).unwrap();
            acc = acc.wrapping_add(1);
        }
    }
    acc.wrapping_add(rm.mutation_ops())
}

fn store_mutation(c: &mut Criterion) {
    let cfgs = configs();

    // Behavioural cross-check before any timing: the SoA store must
    // produce the exact same checksum as the AoS nodes on every count.
    for count in NODE_COUNTS {
        let mut aos = nodes(count);
        let mut soa = NodeStore::from_nodes(nodes(count));
        assert_eq!(
            aos_workout(&mut aos, &cfgs, 2),
            soa_workout(&mut soa, &cfgs, 2),
            "layouts disagree at {count} nodes"
        );
    }

    let mut group = c.benchmark_group("store_mutation");
    group.sample_size(20);
    for count in NODE_COUNTS {
        let rounds = if count >= 100_000 { 1 } else { 8 };
        group.bench_function(format!("aos_node_{count}"), |b| {
            let mut aos = nodes(count);
            b.iter(|| black_box(aos_workout(black_box(&mut aos), &cfgs, rounds)));
        });
        group.bench_function(format!("soa_store_{count}"), |b| {
            let mut soa = NodeStore::from_nodes(nodes(count));
            b.iter(|| black_box(soa_workout(black_box(&mut soa), &cfgs, rounds)));
        });
        group.bench_function(format!("rm_splice_{count}"), |b| {
            let mut rm = ResourceManager::new(nodes(count), configs());
            b.iter(|| black_box(rm_workout(black_box(&mut rm), rounds)));
        });
    }
    group.finish();
}

criterion_group!(benches, store_mutation);
criterion_main!(benches);
