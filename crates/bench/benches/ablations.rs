//! Ablation benches (DESIGN.md A1–A4): quantify the design choices the
//! paper fixes silently.
//!
//! * **A1** — allocation strategy (best/first/worst fit, random,
//!   least-loaded) on identical workloads.
//! * **A2** — per-configuration idle/busy lists vs naive full scans:
//!   identical schedules, different search-step counts and wall time.
//! * **A3** — suspension queue vs discard-on-block.
//! * **A4** — event-driven vs literal tick-stepped driver: identical
//!   results, very different wall time.

use criterion::{criterion_group, criterion_main, Criterion};
use dreamsim_bench::BENCH_SEED;
use dreamsim_engine::{ReconfigMode, SimParams, Simulation};
use dreamsim_sched::{AllocationStrategy, CaseStudyScheduler};
use dreamsim_sweep::ablations;
use dreamsim_sweep::runner::{run_point, PolicyConfig, SweepPoint};
use dreamsim_workload::SyntheticSource;
use std::hint::black_box;

fn base(tasks: usize) -> SimParams {
    let mut p = SimParams::paper(100, tasks, ReconfigMode::Partial);
    p.seed = BENCH_SEED;
    p
}

fn a1_policies(c: &mut Criterion) {
    println!("\n=== A1 — allocation strategies (100 nodes, 1000 tasks) ===");
    println!(
        "{:<14} {:>12} {:>13} {:>12} {:>10}",
        "strategy", "wasted-area", "waiting-time", "sched-steps", "discarded"
    );
    for (label, m) in ablations::policy_comparison(&base(1_000), 0) {
        println!(
            "{label:<14} {:>12.2} {:>13.1} {:>12.1} {:>10}",
            m.avg_wasted_area_per_task,
            m.avg_waiting_time_per_task,
            m.avg_scheduling_steps_per_task,
            m.total_discarded_tasks
        );
    }
    let mut group = c.benchmark_group("a1_policies");
    group.sample_size(10);
    for strategy in [
        AllocationStrategy::BestFit,
        AllocationStrategy::FirstFit,
        AllocationStrategy::Random,
    ] {
        group.bench_function(strategy.label(), |b| {
            b.iter(|| {
                let point = SweepPoint::new(strategy.label(), base(500)).with_policy(PolicyConfig {
                    strategy,
                    naive_search: false,
                });
                black_box(run_point(&point).metrics.avg_wasted_area_per_task)
            });
        });
    }
    group.finish();
}

fn a2_datastructures(c: &mut Criterion) {
    let (lists, naive) = ablations::datastructure_comparison(&base(1_000));
    println!("\n=== A2 — idle/busy lists vs naive full scans (1000 tasks) ===");
    println!(
        "scheduler search length: lists {} vs naive {} ({:.2}x)",
        lists.scheduler_search_length,
        naive.scheduler_search_length,
        naive.scheduler_search_length as f64 / lists.scheduler_search_length.max(1) as f64
    );
    assert_eq!(lists.total_tasks_completed, naive.total_tasks_completed);
    let mut group = c.benchmark_group("a2_datastructures");
    group.sample_size(10);
    group.bench_function("list_based", |b| {
        b.iter(|| black_box(run_point(&SweepPoint::new("l", base(500))).metrics.total_scheduler_workload));
    });
    group.bench_function("naive_scan", |b| {
        b.iter(|| {
            let point = SweepPoint::new("n", base(500)).with_policy(PolicyConfig {
                strategy: AllocationStrategy::BestFit,
                naive_search: true,
            });
            black_box(run_point(&point).metrics.total_scheduler_workload)
        });
    });
    group.finish();
}

fn a3_suspension(c: &mut Criterion) {
    let (with_q, without) = ablations::suspension_comparison(&base(1_000));
    println!("\n=== A3 — suspension queue on/off (1000 tasks) ===");
    println!(
        "discarded: with {} vs without {}; completed: {} vs {}",
        with_q.total_discarded_tasks,
        without.total_discarded_tasks,
        with_q.total_tasks_completed,
        without.total_tasks_completed
    );
    assert!(without.total_discarded_tasks >= with_q.total_discarded_tasks);
    let mut group = c.benchmark_group("a3_suspension");
    group.sample_size(10);
    group.bench_function("with_suspension", |b| {
        b.iter(|| black_box(run_point(&SweepPoint::new("s", base(500))).metrics.total_suspensions));
    });
    group.bench_function("without_suspension", |b| {
        b.iter(|| {
            let mut p = base(500);
            p.suspension_enabled = false;
            black_box(run_point(&SweepPoint::new("ns", p)).metrics.total_discarded_tasks)
        });
    });
    group.finish();
}

fn a4_driver(c: &mut Criterion) {
    let mut p = base(200);
    p.task_time = dreamsim_engine::params::Range::new(50, 5_000);
    let (event, ticked) = ablations::driver_comparison(&p);
    println!("\n=== A4 — event-driven vs tick-stepped driver (200 tasks) ===");
    println!(
        "metrics identical: {}; simulated {} ticks",
        event == ticked,
        event.total_simulation_time
    );
    assert_eq!(event, ticked);
    let mut group = c.benchmark_group("a4_driver");
    group.sample_size(10);
    let build = |p: &SimParams| {
        Simulation::new(
            p.clone(),
            SyntheticSource::from_params(p),
            CaseStudyScheduler::new(),
        )
        .unwrap()
    };
    group.bench_function("event_driven", |b| {
        b.iter(|| black_box(build(&p).run().metrics.total_simulation_time));
    });
    group.bench_function("tick_stepped", |b| {
        b.iter(|| black_box(build(&p).run_tick_stepped().metrics.total_simulation_time));
    });
    group.finish();
}

criterion_group!(benches, a1_policies, a2_datastructures, a3_suspension, a4_driver);
criterion_main!(benches);
