//! Table I: the full performance-metric suite. Prints every metric for
//! one paper-parameterized run in each mode and times metric
//! finalization plus report generation (the output subsystem).

use criterion::{criterion_group, criterion_main, Criterion};
use dreamsim_bench::{timed_run, BENCH_SEED};
use dreamsim_engine::{ReconfigMode, Report, SimParams};
use std::hint::black_box;

fn table1(c: &mut Criterion) {
    println!("\n=== Table I — performance metrics (200 nodes, 1000 tasks) ===");
    println!(
        "{:<42} {:>14} {:>14}",
        "metric", "full", "partial"
    );
    let full = timed_run(200, 1_000, ReconfigMode::Full, BENCH_SEED);
    let partial = timed_run(200, 1_000, ReconfigMode::Partial, BENCH_SEED);
    let rows: [(&str, f64, f64); 10] = [
        (
            "avg wasted area per task",
            full.avg_wasted_area_per_task,
            partial.avg_wasted_area_per_task,
        ),
        (
            "avg running time of each task",
            full.avg_running_time_per_task,
            partial.avg_running_time_per_task,
        ),
        (
            "avg reconfiguration count per node",
            full.avg_reconfig_count_per_node,
            partial.avg_reconfig_count_per_node,
        ),
        (
            "avg reconfiguration time per task",
            full.avg_config_time_per_task,
            partial.avg_config_time_per_task,
        ),
        (
            "avg waiting time per task",
            full.avg_waiting_time_per_task,
            partial.avg_waiting_time_per_task,
        ),
        (
            "avg scheduling steps per task",
            full.avg_scheduling_steps_per_task,
            partial.avg_scheduling_steps_per_task,
        ),
        (
            "total discarded tasks",
            full.total_discarded_tasks as f64,
            partial.total_discarded_tasks as f64,
        ),
        (
            "total scheduler workload",
            full.total_scheduler_workload as f64,
            partial.total_scheduler_workload as f64,
        ),
        (
            "total used nodes",
            full.total_used_nodes as f64,
            partial.total_used_nodes as f64,
        ),
        (
            "total simulation time",
            full.total_simulation_time as f64,
            partial.total_simulation_time as f64,
        ),
    ];
    for (name, f, p) in rows {
        println!("{name:<42} {f:>14.2} {p:>14.2}");
    }
    println!();

    let mut group = c.benchmark_group("table1_metrics");
    group.sample_size(10);
    group.bench_function("simulate_and_finalize_200n_1000t", |b| {
        b.iter(|| black_box(timed_run(200, 1_000, ReconfigMode::Partial, BENCH_SEED)));
    });
    let params = SimParams::paper(200, 1_000, ReconfigMode::Partial);
    let report = Report::new(params, partial.clone());
    group.bench_function("xml_report_generation", |b| {
        b.iter(|| black_box(report.to_xml()));
    });
    group.bench_function("json_report_generation", |b| {
        b.iter(|| black_box(report.to_json()));
    });
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
