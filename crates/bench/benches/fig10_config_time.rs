//! Figure 10: average configuration time per task (Eq. 10), 200 nodes.
//! Partial reconfiguration reconfigures more often (Fig. 7), so it pays
//! more configuration time per task.

use criterion::{criterion_group, criterion_main, Criterion};
use dreamsim_bench::{regenerate, timed_run, BENCH_SEED};
use dreamsim_engine::ReconfigMode;
use dreamsim_sweep::figures::Figure;
use std::hint::black_box;

fn fig10(c: &mut Criterion) {
    let s = regenerate(Figure::Fig10);
    assert!(
        s.agreement_with_paper() >= 0.5,
        "partial should pay more configuration time on most sweep points"
    );

    let mut group = c.benchmark_group("fig10_config_time");
    group.sample_size(10);
    for (label, mode) in [
        ("200n_full", ReconfigMode::Full),
        ("200n_partial", ReconfigMode::Partial),
    ] {
        group.bench_function(label, |bencher| {
            bencher.iter(|| {
                let m = timed_run(black_box(200), black_box(500), mode, BENCH_SEED);
                black_box(m.avg_config_time_per_task)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
