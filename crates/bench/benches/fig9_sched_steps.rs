//! Figure 9a (average scheduling steps per task) and Figure 9b (total
//! scheduler workload), 200 nodes. Both metrics track the tick-driven
//! scheduler's search effort, which scales with how long the suspension
//! queue stays populated — shorter under partial reconfiguration.

use criterion::{criterion_group, criterion_main, Criterion};
use dreamsim_bench::{regenerate, timed_run, BENCH_SEED};
use dreamsim_engine::ReconfigMode;
use dreamsim_sweep::figures::Figure;
use std::hint::black_box;

fn fig9(c: &mut Criterion) {
    let a = regenerate(Figure::Fig9a);
    let b = regenerate(Figure::Fig9b);
    assert!(
        a.agreement_with_paper() >= 0.5,
        "partial should need fewer scheduling steps on most sweep points"
    );
    assert!(
        b.agreement_with_paper() >= 0.5,
        "partial should have lower total workload on most sweep points"
    );
    // Workload is search length plus housekeeping, so 9b dominates 9a at
    // every point.
    for (f9a, f9b) in a.partial.iter().zip(&b.partial) {
        assert!(f9b >= f9a, "workload below per-task steps?");
    }

    let mut group = c.benchmark_group("fig9_sched_steps");
    group.sample_size(10);
    for (label, mode) in [
        ("200n_full", ReconfigMode::Full),
        ("200n_partial", ReconfigMode::Partial),
    ] {
        group.bench_function(label, |bencher| {
            bencher.iter(|| {
                let m = timed_run(black_box(200), black_box(500), mode, BENCH_SEED);
                black_box((m.avg_scheduling_steps_per_task, m.total_scheduler_workload))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
