//! Micro-benchmarks of the RNG substrate: the Ziggurat samplers against
//! naive baselines (Box–Muller normal, inversion exponential), the
//! Marsaglia–Tsang gamma, the discrete samplers, and the raw engines —
//! plus a cross-check against the external `rand` crate's uniform core.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dreamsim_rng::{binomial, discrete::AliasTable, gamma, poisson, uniform, ziggurat};
use dreamsim_rng::{Rng, RngCore, Shr3, SplitMix64, Xoshiro256StarStar};
use rand::RngCore as _;
use rand::SeedableRng;
use std::hint::black_box;

const N: u64 = 10_000;

fn engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng_engines");
    group.throughput(Throughput::Elements(N));
    group.bench_function("xoshiro256**", |b| {
        let mut e = Xoshiro256StarStar::seed_from(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..N {
                acc = acc.wrapping_add(e.next_u64());
            }
            black_box(acc)
        });
    });
    group.bench_function("splitmix64", |b| {
        let mut e = SplitMix64::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..N {
                acc = acc.wrapping_add(e.next_u64());
            }
            black_box(acc)
        });
    });
    group.bench_function("shr3", |b| {
        let mut e = Shr3::new(1);
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..N {
                acc = acc.wrapping_add(e.next());
            }
            black_box(acc)
        });
    });
    group.bench_function("rand_crate_stdrng_baseline", |b| {
        let mut e = rand::rngs::StdRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..N {
                acc = acc.wrapping_add(e.next_u64());
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng_distributions");
    group.throughput(Throughput::Elements(N));
    group.bench_function("ziggurat_normal", |b| {
        let mut e = Xoshiro256StarStar::seed_from(2);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..N {
                acc += ziggurat::normal(&mut e);
            }
            black_box(acc)
        });
    });
    group.bench_function("box_muller_normal_baseline", |b| {
        let mut e = Xoshiro256StarStar::seed_from(2);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..N {
                let u1 = uniform::f64_open(&mut e);
                let u2 = uniform::f64_unit(&mut e);
                acc += (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            }
            black_box(acc)
        });
    });
    group.bench_function("ziggurat_exponential", |b| {
        let mut e = Xoshiro256StarStar::seed_from(3);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..N {
                acc += ziggurat::exponential(&mut e);
            }
            black_box(acc)
        });
    });
    group.bench_function("inversion_exponential_baseline", |b| {
        let mut e = Xoshiro256StarStar::seed_from(3);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..N {
                acc += -uniform::f64_open(&mut e).ln();
            }
            black_box(acc)
        });
    });
    group.bench_function("gamma_shape_2.5", |b| {
        let mut e = Xoshiro256StarStar::seed_from(4);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..N {
                acc += gamma::gamma(&mut e, 2.5, 1.0);
            }
            black_box(acc)
        });
    });
    group.bench_function("poisson_mean_4_knuth", |b| {
        let mut e = Xoshiro256StarStar::seed_from(5);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..N {
                acc += poisson::poisson(&mut e, 4.0);
            }
            black_box(acc)
        });
    });
    group.bench_function("poisson_mean_400_ptrs", |b| {
        let mut e = Xoshiro256StarStar::seed_from(6);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..N {
                acc += poisson::poisson(&mut e, 400.0);
            }
            black_box(acc)
        });
    });
    group.bench_function("binomial_btrs_n1000_p0.3", |b| {
        let mut e = Xoshiro256StarStar::seed_from(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..N {
                acc += binomial::binomial(&mut e, 0.3, 1000);
            }
            black_box(acc)
        });
    });
    group.bench_function("alias_table_100_categories", |b| {
        let weights: Vec<f64> = (1..=100).map(f64::from).collect();
        let table = AliasTable::new(&weights).unwrap();
        let mut e = Xoshiro256StarStar::seed_from(8);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..N {
                acc += table.sample(&mut e);
            }
            black_box(acc)
        });
    });
    group.bench_function("uniform_inclusive_table_ii", |b| {
        let mut r = Rng::seed_from(9);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..N {
                acc += r.uniform_inclusive(1000, 4000);
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, engines, distributions);
criterion_main!(benches);
