//! Figure 8 (a, b): average waiting time per task (Eq. 8/9) vs generated
//! tasks, 100 and 200 nodes. Partial reconfiguration packs more tasks
//! per node, drains the suspension queue faster, and so waits less; the
//! saturated 100-node runs wait far longer than the 200-node runs.

use criterion::{criterion_group, criterion_main, Criterion};
use dreamsim_bench::{bench_grid, regenerate, timed_run, BENCH_SEED};
use dreamsim_engine::ReconfigMode;
use dreamsim_sweep::figures::Figure;
use std::hint::black_box;

fn fig8(c: &mut Criterion) {
    let a = regenerate(Figure::Fig8a);
    let b = regenerate(Figure::Fig8b);
    assert!(
        a.agreement_with_paper() >= 0.5 && b.agreement_with_paper() >= 0.5,
        "partial reconfiguration should lower waiting time on most sweep points"
    );
    // Cross-panel shape: the 100-node cluster waits at least as long as
    // the 200-node one at every shared sweep point (Sec. VI).
    let grid = bench_grid();
    for (i, &t) in a.task_counts.iter().enumerate() {
        let small = grid
            .cell(100, ReconfigMode::Partial, t)
            .expect("grid covers 100 nodes");
        let large = grid
            .cell(200, ReconfigMode::Partial, t)
            .expect("grid covers 200 nodes");
        assert!(
            small.avg_waiting_time_per_task >= large.avg_waiting_time_per_task,
            "point {i}: 100-node wait below 200-node wait"
        );
    }

    let mut group = c.benchmark_group("fig8_waiting_time");
    group.sample_size(10);
    for (label, nodes) in [("100n_partial", 100), ("200n_partial", 200)] {
        group.bench_function(label, |bencher| {
            bencher.iter(|| {
                let m = timed_run(
                    black_box(nodes),
                    black_box(500),
                    ReconfigMode::Partial,
                    BENCH_SEED,
                );
                black_box(m.avg_waiting_time_per_task)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
