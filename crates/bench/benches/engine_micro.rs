//! Micro-benchmarks of the simulation substrate: event-queue operations,
//! idle/busy list maintenance, Algorithm 1 scans, and suspension-queue
//! rescans — the primitives whose step counts the paper's workload
//! metric aggregates.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dreamsim_engine::{Event, EventQueue};
use dreamsim_model::store::Demand;
use dreamsim_model::{
    Config, ConfigId, Node, NodeId, ResourceManager, StepCounter, SuspensionQueue, TaskId,
};
use std::hint::black_box;

fn event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("push_pop_10k_fifo", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u32 {
                q.push(u64::from(i % 977), Event::TaskArrival { task: TaskId(i) });
            }
            let mut acc = 0u64;
            while let Some((t, _)) = q.pop() {
                acc = acc.wrapping_add(t);
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn make_resources(nodes: usize, configs: usize) -> ResourceManager {
    let configs: Vec<Config> = (0..configs)
        .map(|i| Config::new(ConfigId::from_index(i), 200 + (i as u64 * 37) % 1800, 15))
        .collect();
    let nodes: Vec<Node> = (0..nodes)
        .map(|i| Node::new(NodeId::from_index(i), 1000 + (i as u64 * 101) % 3000, 2))
        .collect();
    ResourceManager::new(nodes, configs)
}

fn resource_queries(c: &mut Criterion) {
    let mut rm = make_resources(200, 50);
    let mut steps = StepCounter::new();
    // Configure half the nodes with rotating configs; leave some idle.
    let mut entries = Vec::new();
    for i in 0..100 {
        let cfg = ConfigId::from_index(i % 50);
        if let Ok(e) = rm.configure_slot(NodeId::from_index(i), cfg, &mut steps) {
            entries.push(e);
        }
    }
    // Make half of those busy.
    for (i, &e) in entries.iter().enumerate() {
        if i % 2 == 0 {
            rm.assign_task(e, TaskId(i as u32), &mut steps).unwrap();
        }
    }
    let mut group = c.benchmark_group("resource_queries");
    group.bench_function("find_best_idle_via_lists", |b| {
        b.iter(|| {
            let mut s = StepCounter::new();
            black_box(rm.find_best_idle(ConfigId(7), &mut s))
        });
    });
    group.bench_function("find_best_idle_naive_scan", |b| {
        b.iter(|| {
            let mut s = StepCounter::new();
            black_box(dreamsim_model::naive::find_best_idle_naive(&rm, ConfigId(7), &mut s))
        });
    });
    group.bench_function("find_best_blank_200_nodes", |b| {
        b.iter(|| {
            let mut s = StepCounter::new();
            black_box(rm.find_best_blank(Demand::area(900), &mut s))
        });
    });
    group.bench_function("algorithm1_find_any_idle_node", |b| {
        b.iter(|| {
            let mut s = StepCounter::new();
            black_box(rm.find_any_idle_node(Demand::area(1900), &mut s))
        });
    });
    group.bench_function("busy_candidate_scan", |b| {
        b.iter(|| {
            let mut s = StepCounter::new();
            black_box(rm.busy_candidate_exists(Demand::area(3900), &mut s))
        });
    });
    group.finish();
}

fn suspension_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("suspension_queue");
    group.bench_function("rescan_1000_queued_no_match", |b| {
        let mut q = SuspensionQueue::new();
        let mut s = StepCounter::new();
        for i in 0..1_000 {
            q.push(TaskId(i), &mut s);
        }
        b.iter(|| {
            let mut s = StepCounter::new();
            black_box(q.remove_first_match(&mut s, |_| false))
        });
    });
    group.bench_function("rescan_match_at_position_500", |b| {
        b.iter(|| {
            let mut q = SuspensionQueue::new();
            let mut s = StepCounter::new();
            for i in 0..1_000 {
                q.push(TaskId(i), &mut s);
            }
            black_box(q.remove_first_match(&mut s, |t| t.0 == 500))
        });
    });
    group.finish();
}

criterion_group!(benches, event_queue, resource_queries, suspension_queue);
criterion_main!(benches);
