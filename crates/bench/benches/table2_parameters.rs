//! Table II: the simulation-parameter plumbing. Verifies (and times)
//! that resource/workload generation honours every Table II range at the
//! paper's scale — 200 nodes, 50 configurations, Table II bounds.

use criterion::{criterion_group, criterion_main, Criterion};
use dreamsim_bench::BENCH_SEED;
use dreamsim_engine::{init, ReconfigMode, SimParams};
use dreamsim_engine::sim::{SourceYield, TaskSource as _};
use dreamsim_rng::Rng;
use dreamsim_workload::SyntheticSource;
use std::hint::black_box;

fn table2(c: &mut Criterion) {
    let params = SimParams::paper(200, 10_000, ReconfigMode::Partial);
    println!("\n=== Table II — simulation parameter ranges ===");
    println!("total nodes            : {}", params.total_nodes);
    println!("total configurations   : {}", params.total_configs);
    println!("task interval          : [1..{}]", params.next_task_max_interval);
    println!("config ReqArea range   : [{}..{}]", params.config_area.lo, params.config_area.hi);
    println!("node TotalArea range   : [{}..{}]", params.node_area.lo, params.node_area.hi);
    println!("task t_required range  : [{}..{}]", params.task_time.lo, params.task_time.hi);
    println!("t_config range         : [{}..{}]", params.config_time.lo, params.config_time.hi);
    println!("closest-match fraction : {}", params.closest_match_fraction);

    // Exhaustive range verification at paper scale.
    let mut rng = Rng::seed_from(BENCH_SEED);
    let configs = init::generate_configs(&params, &mut rng);
    let nodes = init::generate_nodes(&params, &mut rng);
    assert!(configs.iter().all(|cf| params.config_area.contains(cf.req_area)));
    assert!(configs.iter().all(|cf| params.config_time.contains(cf.config_time)));
    assert!(nodes.iter().all(|n| params.node_area.contains(n.total_area)));
    let mut source = SyntheticSource::from_params(&params);
    let mut phantoms = 0usize;
    for _ in 0..10_000 {
        match source.next_task(0, &mut rng) {
            SourceYield::Task(t) => {
                assert!((1..=params.next_task_max_interval).contains(&t.interarrival));
                assert!(params.task_time.contains(t.required_time));
                if matches!(t.preferred, dreamsim_model::PreferredConfig::Phantom { .. }) {
                    phantoms += 1;
                }
            }
            other => panic!("unexpected {other:?}"),
        }
    }
    let rate = phantoms as f64 / 10_000.0;
    assert!((rate - 0.15).abs() < 0.02, "closest-match rate {rate}");
    println!("verified 10000 synthetic tasks against Table II ranges (phantom rate {rate:.3})\n");

    let mut group = c.benchmark_group("table2_parameters");
    group.bench_function("generate_200_nodes_50_configs", |b| {
        b.iter(|| {
            let mut rng = Rng::seed_from(BENCH_SEED);
            let c = init::generate_configs(&params, &mut rng);
            let n = init::generate_nodes(&params, &mut rng);
            black_box((c.len(), n.len()))
        });
    });
    group.bench_function("generate_10k_synthetic_tasks", |b| {
        b.iter(|| {
            let mut rng = Rng::seed_from(BENCH_SEED);
            let mut src = SyntheticSource::from_params(&params);
            let mut acc = 0u64;
            for _ in 0..10_000 {
                if let SourceYield::Task(t) = src.next_task(0, &mut rng) {
                    acc = acc.wrapping_add(t.required_time);
                }
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
