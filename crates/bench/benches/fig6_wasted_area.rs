//! Figure 6 (a, b): average wasted area per task vs generated tasks, for
//! 100 and 200 nodes, with and without partial reconfiguration.
//!
//! Regenerates both panels at bench scale (printed as CSV) and times the
//! underlying simulation runs.

use criterion::{criterion_group, criterion_main, Criterion};
use dreamsim_bench::{regenerate, timed_run, BENCH_SEED};
use dreamsim_engine::ReconfigMode;
use dreamsim_sweep::figures::Figure;
use std::hint::black_box;

fn fig6(c: &mut Criterion) {
    let a = regenerate(Figure::Fig6a);
    let b = regenerate(Figure::Fig6b);
    assert!(
        a.agreement_with_paper() >= 0.5 && b.agreement_with_paper() >= 0.5,
        "partial reconfiguration should waste less area on most sweep points"
    );

    let mut group = c.benchmark_group("fig6_wasted_area");
    group.sample_size(10);
    for (label, nodes, mode) in [
        ("100n_full", 100, ReconfigMode::Full),
        ("100n_partial", 100, ReconfigMode::Partial),
        ("200n_full", 200, ReconfigMode::Full),
        ("200n_partial", 200, ReconfigMode::Partial),
    ] {
        group.bench_function(label, |bencher| {
            bencher.iter(|| {
                let m = timed_run(black_box(nodes), black_box(500), mode, BENCH_SEED);
                black_box(m.avg_wasted_area_per_task)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
