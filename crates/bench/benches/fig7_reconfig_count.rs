//! Figure 7 (a, b): average reconfiguration count per node vs generated
//! tasks, 100 and 200 nodes. The paper's direction: the partial
//! scenario reconfigures nodes **more** (packing several tasks per node
//! costs extra region reconfigurations).

use criterion::{criterion_group, criterion_main, Criterion};
use dreamsim_bench::{regenerate, timed_run, BENCH_SEED};
use dreamsim_engine::ReconfigMode;
use dreamsim_sweep::figures::Figure;
use std::hint::black_box;

fn fig7(c: &mut Criterion) {
    let a = regenerate(Figure::Fig7a);
    let b = regenerate(Figure::Fig7b);
    assert!(
        a.agreement_with_paper() >= 0.5 && b.agreement_with_paper() >= 0.5,
        "partial reconfiguration should reconfigure nodes more on most sweep points"
    );

    let mut group = c.benchmark_group("fig7_reconfig_count");
    group.sample_size(10);
    for (label, mode) in [
        ("200n_full", ReconfigMode::Full),
        ("200n_partial", ReconfigMode::Partial),
    ] {
        group.bench_function(label, |bencher| {
            bencher.iter(|| {
                let m = timed_run(black_box(200), black_box(500), mode, BENCH_SEED);
                black_box(m.avg_reconfig_count_per_node)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
