//! Shared helpers for the DReAMSim benchmark harness.
//!
//! Each Criterion bench target regenerates one of the paper's tables or
//! figures at benchmark scale (the paper sweeps up to 100 000 tasks;
//! benches default to a reduced ladder so a full `cargo bench` stays in
//! the minutes range) and prints the regenerated series once, so bench
//! output doubles as the figure data. EXPERIMENTS.md records the
//! full-scale numbers produced by `dreamsim figures`.

use dreamsim_engine::{Metrics, ReconfigMode, SimParams};
use dreamsim_sweep::figures::{ExperimentGrid, Figure, FigureSeries};
use dreamsim_sweep::runner::{run_point, SweepPoint};
use std::sync::OnceLock;

/// Task-count ladder used by the figure benches.
pub const BENCH_TASKS: [usize; 3] = [500, 1_000, 2_000];

/// Seed shared by all benches (results are deterministic).
pub const BENCH_SEED: u64 = 2012;

/// The benchmark-scale experiment grid (both node counts, both modes,
/// the bench ladder), computed once per process and shared by every
/// figure bench.
pub fn bench_grid() -> &'static ExperimentGrid {
    static GRID: OnceLock<ExperimentGrid> = OnceLock::new();
    GRID.get_or_init(|| ExperimentGrid::run(&[100, 200], &BENCH_TASKS, BENCH_SEED, 0))
}

/// Print a regenerated figure series (once per bench target).
pub fn print_series(series: &FigureSeries) {
    println!(
        "\n=== {} — {} ({} nodes) ===",
        series.figure,
        series.figure.metric_name(),
        series.figure.node_count()
    );
    print!("{}", series.to_csv());
    println!(
        "paper-direction agreement: {:.0}% (partial expected {} full)\n",
        series.agreement_with_paper() * 100.0,
        if series.figure.partial_expected_lower() {
            "below"
        } else {
            "above"
        }
    );
}

/// Regenerate and print one figure from the shared grid.
pub fn regenerate(fig: Figure) -> FigureSeries {
    let series = bench_grid().figure(fig);
    print_series(&series);
    series
}

/// One paper-parameterized run for timing benches.
#[must_use]
pub fn timed_run(nodes: usize, tasks: usize, mode: ReconfigMode, seed: u64) -> Metrics {
    let mut params = SimParams::paper(nodes, tasks, mode);
    params.seed = seed;
    run_point(&SweepPoint::new("bench", params)).metrics
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_produces_every_figure() {
        // Smoke test at tiny scale so `cargo test` stays fast; the real
        // grid is exercised by `cargo bench`.
        let grid = ExperimentGrid::run(&[100, 200], &[120], 1, 0);
        for fig in Figure::ALL {
            let s = grid.figure(fig);
            assert_eq!(s.task_counts, vec![120]);
        }
    }

    #[test]
    fn timed_run_is_deterministic() {
        let a = timed_run(20, 100, ReconfigMode::Partial, 5);
        let b = timed_run(20, 100, ReconfigMode::Partial, 5);
        assert_eq!(a, b);
    }
}
