//! Standard Workload Format (SWF) import — the "real workloads" input
//! path the paper names as future work ("we will test the simulation
//! framework with real workloads").
//!
//! SWF is the plain-text format of the Parallel Workloads Archive: one
//! job per line, 18 whitespace-separated fields, `;` header/comment
//! lines. This importer consumes the fields DReAMSim can represent:
//!
//! | SWF field | index | Used as |
//! |---|---|---|
//! | submit time (s) | 1 | arrival time → inter-arrival ticks |
//! | run time (s) | 3 | `t_required` (scaled by `ticks_per_second`) |
//! | requested processors | 7 | mapped to a preferred configuration |
//! | status | 10 | jobs with status 0 (failed) optionally skipped |
//!
//! Processor counts map onto the configuration list by rank: jobs are
//! bucketed by `requested processors` quantile, and bucket *k* prefers
//! configuration *k* — preserving the real trace's size heterogeneity
//! while staying within the framework's configuration model. Jobs with
//! missing (−1) run time or submit time are skipped.

use dreamsim_engine::sim::TaskSpec;
use dreamsim_model::{ConfigId, PreferredConfig};

/// Import options.
#[derive(Clone, Copy, Debug)]
pub struct SwfOptions {
    /// Simulation timeticks per SWF second (SWF times are in seconds;
    /// DReAMSim's Table II operates at finer granularity).
    pub ticks_per_second: u64,
    /// Number of configurations to spread job sizes across.
    pub num_configs: usize,
    /// Skip jobs whose SWF status field is 0 (failed/cancelled).
    pub skip_failed: bool,
    /// Import at most this many jobs (0 = no limit).
    pub max_jobs: usize,
}

impl Default for SwfOptions {
    fn default() -> Self {
        Self {
            ticks_per_second: 1,
            num_configs: 50,
            skip_failed: true,
            max_jobs: 0,
        }
    }
}

/// SWF parse error with 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwfError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SWF line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SwfError {}

#[derive(Clone, Copy, Debug)]
struct SwfJob {
    submit: u64,
    runtime: u64,
    procs: u64,
}

fn parse_jobs(text: &str, opts: &SwfOptions) -> Result<Vec<SwfJob>, SwfError> {
    let mut jobs = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let body = raw.trim();
        if body.is_empty() || body.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = body.split_whitespace().collect();
        if fields.len() < 11 {
            return Err(SwfError {
                line,
                message: format!("expected ≥11 SWF fields, found {}", fields.len()),
            });
        }
        let num = |idx: usize, what: &str| -> Result<i64, SwfError> {
            fields[idx].parse().map_err(|_| SwfError {
                line,
                message: format!("invalid {what}: {:?}", fields[idx]),
            })
        };
        let submit = num(1, "submit time")?;
        let runtime = num(3, "run time")?;
        let procs = num(7, "requested processors")?;
        let status = num(10, "status")?;
        if submit < 0 || runtime <= 0 {
            continue; // missing data per SWF convention (−1)
        }
        if opts.skip_failed && status == 0 {
            continue;
        }
        jobs.push(SwfJob {
            submit: submit as u64,
            runtime: runtime as u64,
            procs: procs.max(1) as u64,
        });
        if opts.max_jobs > 0 && jobs.len() >= opts.max_jobs {
            break;
        }
    }
    // SWF files are submit-ordered in principle, but archives contain
    // out-of-order records; sort to recover a valid arrival sequence.
    jobs.sort_by_key(|j| j.submit);
    Ok(jobs)
}

/// Convert SWF text into DReAMSim task specs (replayable through
/// [`TraceSource::from_specs`](crate::trace::TraceSource::from_specs)).
pub fn import_swf(text: &str, opts: &SwfOptions) -> Result<Vec<TaskSpec>, SwfError> {
    assert!(opts.num_configs > 0, "num_configs must be nonzero");
    assert!(
        opts.ticks_per_second > 0,
        "ticks_per_second must be nonzero"
    );
    let jobs = parse_jobs(text, opts)?;
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    // Rank job sizes into `num_configs` quantile buckets.
    let mut sizes: Vec<u64> = jobs.iter().map(|j| j.procs).collect();
    // TIEBREAK: u64 keys with dedup below — equal elements are
    // indistinguishable.
    sizes.sort_unstable();
    sizes.dedup();
    let bucket_of = |procs: u64| -> usize {
        let rank = sizes.partition_point(|&s| s < procs);
        rank * opts.num_configs / sizes.len().max(1)
    };
    let mut specs = Vec::with_capacity(jobs.len());
    let mut last_submit = jobs[0].submit;
    for j in &jobs {
        let interarrival = (j.submit - last_submit) * opts.ticks_per_second;
        last_submit = j.submit;
        let config = ConfigId::from_index(bucket_of(j.procs).min(opts.num_configs - 1));
        specs.push(TaskSpec {
            // Zero gaps (the first job, and simultaneous submissions)
            // become one tick so arrivals stay strictly ordered.
            interarrival: interarrival.max(1),
            required_time: j.runtime * opts.ticks_per_second,
            preferred: PreferredConfig::Known(config),
            needed_area: 0,
            data_bytes: j.procs * 1024,
        });
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Version: 2.2
; Computer: test cluster
;
1 0 -1 120 4 -1 -1 8 -1 -1 1 1 1 -1 -1 -1 -1 -1
2 60 -1 300 16 -1 -1 32 -1 -1 1 1 1 -1 -1 -1 -1 -1
3 90 -1 -1 4 -1 -1 8 -1 -1 1 1 1 -1 -1 -1 -1 -1
4 120 -1 50 1 -1 -1 1 -1 -1 0 1 1 -1 -1 -1 -1 -1
5 180 -1 600 64 -1 -1 128 -1 -1 1 1 1 -1 -1 -1 -1 -1
";

    fn opts() -> SwfOptions {
        SwfOptions {
            ticks_per_second: 10,
            num_configs: 4,
            skip_failed: true,
            max_jobs: 0,
        }
    }

    #[test]
    fn imports_valid_jobs_and_skips_missing_and_failed() {
        let specs = import_swf(SAMPLE, &opts()).unwrap();
        // Job 3 has runtime −1 (skipped); job 4 has status 0 (skipped).
        assert_eq!(specs.len(), 3);
        // Runtimes scaled by ticks_per_second.
        assert_eq!(specs[0].required_time, 1_200);
        assert_eq!(specs[1].required_time, 3_000);
        assert_eq!(specs[2].required_time, 6_000);
        // Inter-arrivals from submit gaps: 0→max(1), 60 s → 600 ticks,
        // 120 s gap (60→180) → 1200 ticks.
        assert_eq!(specs[0].interarrival, 1);
        assert_eq!(specs[1].interarrival, 600);
        assert_eq!(specs[2].interarrival, 1_200);
    }

    #[test]
    fn size_buckets_are_monotone_in_processor_count() {
        let specs = import_swf(SAMPLE, &opts()).unwrap();
        let cfg = |i: usize| match specs[i].preferred {
            PreferredConfig::Known(c) => c.index(),
            PreferredConfig::Phantom { .. } => panic!("SWF import emits known prefs"),
        };
        // procs 8 < 32 < 128 → non-decreasing config ranks.
        assert!(cfg(0) <= cfg(1));
        assert!(cfg(1) <= cfg(2));
        assert!(cfg(2) < 4, "within num_configs");
    }

    #[test]
    fn keep_failed_jobs_when_asked() {
        let mut o = opts();
        o.skip_failed = false;
        let specs = import_swf(SAMPLE, &o).unwrap();
        assert_eq!(specs.len(), 4, "status-0 job kept");
    }

    #[test]
    fn max_jobs_caps_import() {
        let mut o = opts();
        o.max_jobs = 2;
        let specs = import_swf(SAMPLE, &o).unwrap();
        assert_eq!(specs.len(), 2);
    }

    #[test]
    fn out_of_order_submits_are_sorted() {
        let text = "\
10 100 -1 50 1 -1 -1 2 -1 -1 1 1 1 -1 -1 -1 -1 -1
11 40 -1 50 1 -1 -1 2 -1 -1 1 1 1 -1 -1 -1 -1 -1
";
        let specs = import_swf(text, &opts()).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[1].interarrival, 600, "sorted: 40 → 100 is a 60 s gap");
    }

    #[test]
    fn malformed_lines_carry_line_numbers() {
        let err = import_swf("; header\n1 2 3\n", &opts()).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("≥11"), "{}", err.message);
        let err = import_swf("1 x -1 50 1 -1 -1 2 -1 -1 1\n", &opts()).unwrap_err();
        assert!(err.message.contains("submit time"), "{}", err.message);
    }

    #[test]
    fn empty_and_comment_only_files_import_empty() {
        assert!(import_swf("", &opts()).unwrap().is_empty());
        assert!(import_swf("; nothing\n;\n", &opts()).unwrap().is_empty());
    }

    #[test]
    fn replays_through_a_simulation() {
        use dreamsim_engine::{ReconfigMode, SimParams, Simulation};
        use dreamsim_sched_shim::CaseStudyShim;
        // No dreamsim-sched dev-dependency here; drive with the trace
        // source through the engine's public trait via a tiny shim.
        let specs = import_swf(SAMPLE, &opts()).unwrap();
        let mut p = SimParams::paper(10, specs.len(), ReconfigMode::Partial);
        p.total_configs = 4;
        p.seed = 3;
        let src = crate::trace::TraceSource::from_specs(specs);
        let result = Simulation::new(p, src, CaseStudyShim).unwrap().run();
        assert_eq!(
            result.metrics.total_tasks_completed + result.metrics.total_discarded_tasks,
            3
        );
    }

    /// Minimal greedy policy so the workload crate's tests don't need a
    /// dev-dependency cycle on `dreamsim-sched`.
    mod dreamsim_sched_shim {
        use dreamsim_engine::sim::{
            Decision, DiscardReason, Placement, Resume, SchedCtx, SchedulePolicy,
        };
        use dreamsim_engine::PhaseKind;
        use dreamsim_model::{Demand, EntryRef, PreferredConfig, TaskId};

        #[derive(Default)]
        pub struct CaseStudyShim;

        impl SchedulePolicy for CaseStudyShim {
            fn name(&self) -> &'static str {
                "swf-test-shim"
            }

            fn schedule(&mut self, ctx: &mut SchedCtx<'_>, task: TaskId) -> Decision {
                let PreferredConfig::Known(config) = ctx.tasks.get(task).preferred else {
                    return Decision::Discarded(DiscardReason::NoClosestConfig);
                };
                if let Some(entry) = ctx.resources.find_best_idle(config, ctx.steps) {
                    ctx.resources.assign_task(entry, task, ctx.steps).unwrap();
                    return Decision::Placed(Placement {
                        task,
                        entry,
                        config,
                        config_time: 0,
                        phase: PhaseKind::Allocation,
                    });
                }
                let demand = Demand::of(ctx.resources.config(config));
                let ct = ctx.resources.config(config).config_time;
                if let Some(node) = ctx.resources.find_best_blank(demand, ctx.steps) {
                    let entry = ctx
                        .resources
                        .configure_slot(node, config, ctx.steps)
                        .unwrap();
                    ctx.resources.assign_task(entry, task, ctx.steps).unwrap();
                    return Decision::Placed(Placement {
                        task,
                        entry,
                        config,
                        config_time: ct,
                        phase: PhaseKind::Configuration,
                    });
                }
                Decision::Discarded(DiscardReason::NoFeasibleNode)
            }

            fn on_slot_freed(&mut self, _ctx: &mut SchedCtx<'_>, _freed: EntryRef) -> Vec<Resume> {
                Vec::new()
            }
        }
    }
}
