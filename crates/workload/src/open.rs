//! Open-system task generation for `dreamsim serve`.
//!
//! [`OpenSource`] is the service-mode sibling of
//! [`SyntheticSource`](crate::synthetic::SyntheticSource): an unbounded
//! stream of arrivals whose inter-arrival bound is modulated by a
//! **diurnal load curve** — a deterministic integer triangle wave over a
//! configurable day length — composed with the chaos layer's
//! [`BurstWindow`]. The per-task draw *order* (inter-arrival, required
//! time, phantom flag, preference, area) mirrors the synthetic source
//! exactly, and with amplitude zero the modulation multiplier is the
//! identity and is skipped entirely, so the two sources consume
//! bit-identical RNG sequences for the same parameters.
//!
//! ## Diurnal curve
//!
//! All modulation arithmetic is integer permille — no trigonometry, so
//! the curve is bit-identical on every platform. The wave rises from the
//! trough at the start of each day to the peak at mid-day and falls
//! back: with `tri(phase) ∈ [-1000, 1000]`, the load multiplier is
//! `m = 1000 + amplitude_permille * tri / 1000`, and the effective mean
//! inter-arrival is the base mean scaled by `1000 / m`. Validation caps
//! the amplitude at 900 ‰, so `m ∈ [100, 1900]` and the mean never
//! collapses to zero.
//!
//! ## Resume cursor
//!
//! The source counts yielded tasks and reports the count as its
//! [`source_cursor`](dreamsim_engine::sim::TaskSource::source_cursor).
//! All draw state lives in the checkpointed RNG, so restoring is just
//! accepting the count; the cursor makes service snapshots
//! self-describing (how far into the stream this snapshot is) and lets
//! the recovery report state the resume position.

use dreamsim_engine::params::{ArrivalDistribution, BurstWindow, SimParams};
use dreamsim_engine::sim::{SourceYield, TaskSource, TaskSpec};
use dreamsim_model::{ConfigId, PreferredConfig, Ticks};
use dreamsim_rng::Rng;

/// Unbounded diurnal task stream (the open-system service workload).
#[derive(Clone, Debug)]
pub struct OpenSource {
    /// Upper bound of the uniform inter-arrival interval (off-peak).
    max_interval: u64,
    /// Arrival process.
    arrival: ArrivalDistribution,
    /// `t_required` bounds (inclusive).
    time_lo: u64,
    time_hi: u64,
    /// Phantom-preference area bounds (inclusive; the config-area range).
    area_lo: u64,
    area_hi: u64,
    /// Number of configurations preferences index into.
    num_configs: usize,
    /// Fraction of tasks with a phantom preference.
    phantom_fraction: f64,
    /// Overload burst window, composed with the diurnal curve.
    burst: Option<BurstWindow>,
    /// Diurnal period in ticks; below 2 the curve is flat.
    day_length: u64,
    /// Diurnal modulation depth in permille (0 = flat).
    amplitude_permille: u32,
    /// Tasks yielded so far (the resume cursor).
    yielded: u64,
}

/// Triangle wave over one day, in permille: `-1000` at the start of the
/// day (trough), `+1000` at mid-day (peak), back down by day's end.
/// Pure integer arithmetic — identical on every platform.
fn triangle_permille(phase: u64, day_length: u64) -> i64 {
    let half = day_length / 2;
    if phase < half {
        // Rising edge: -1000 → +1000 over [0, half).
        (2000u128 * u128::from(phase) / u128::from(half)) as i64 - 1000
    } else {
        // Falling edge: +1000 → -1000 over [half, day_length).
        1000 - (2000u128 * u128::from(phase - half) / u128::from(day_length - half)) as i64
    }
}

impl OpenSource {
    /// Build the service workload from the simulation parameters. The
    /// diurnal fields come from `params.service`; without a service
    /// block the curve is flat and the source degenerates to the
    /// synthetic stream.
    #[must_use]
    pub fn from_params(params: &SimParams) -> Self {
        let (day_length, amplitude_permille) = params
            .service
            .map_or((0, 0), |s| (s.day_length, s.amplitude_permille));
        Self {
            max_interval: params.next_task_max_interval,
            arrival: params.arrival,
            time_lo: params.task_time.lo,
            time_hi: params.task_time.hi,
            area_lo: params.config_area.lo,
            area_hi: params.config_area.hi,
            num_configs: params.total_configs,
            phantom_fraction: params.closest_match_fraction,
            burst: params.burst,
            day_length,
            amplitude_permille,
            yielded: 0,
        }
    }

    /// Load multiplier in permille at `now`: 1000 is the identity;
    /// above 1000 arrivals compress (peak), below they stretch (trough).
    fn load_permille(&self, now: Ticks) -> u64 {
        if self.amplitude_permille == 0 || self.day_length < 2 {
            return 1000;
        }
        let tri = triangle_permille(now % self.day_length, self.day_length);
        // amplitude ≤ 900 (validated) and |tri| ≤ 1000, so the product
        // stays within i64 and m ∈ [100, 1900].
        (1000 + i64::from(self.amplitude_permille) * tri / 1000) as u64
    }

    fn draw_interarrival(&self, now: Ticks, rng: &mut Rng) -> Ticks {
        // Burst composition first (exactly the synthetic source's rule:
        // inside [start, end) the bound tightens to the burst interval),
        // then the diurnal multiplier on top. The draw count is one
        // either way, so flat-curve, burst-free streams consume the
        // identical RNG sequence.
        let max_interval = match self.burst {
            Some(b) if (b.start..b.end).contains(&now) => b.interval,
            _ => self.max_interval,
        };
        let m = self.load_permille(now);
        if m == 1000 {
            // Identity multiplier: skip scaling entirely so the draws
            // are bit-identical to SyntheticSource's.
            let mean = (1.0 + max_interval as f64) / 2.0;
            return match self.arrival {
                ArrivalDistribution::Uniform => rng.uniform_inclusive(1, max_interval),
                ArrivalDistribution::Poisson => rng.poisson(mean).max(1),
                ArrivalDistribution::Exponential => {
                    (rng.exponential_with_mean(mean).round() as u64).max(1)
                }
            };
        }
        match self.arrival {
            ArrivalDistribution::Uniform => {
                // Scale the bound in integer space: m > 1000 shrinks it
                // (peak load), m < 1000 widens it.
                let bound = ((u128::from(max_interval) * 1000 / u128::from(m)).max(1)) as u64;
                rng.uniform_inclusive(1, bound)
            }
            ArrivalDistribution::Poisson => {
                let mean = (1.0 + max_interval as f64) / 2.0 * 1000.0 / m as f64;
                rng.poisson(mean).max(1)
            }
            ArrivalDistribution::Exponential => {
                let mean = (1.0 + max_interval as f64) / 2.0 * 1000.0 / m as f64;
                (rng.exponential_with_mean(mean).round() as u64).max(1)
            }
        }
    }
}

impl TaskSource for OpenSource {
    fn next_task(&mut self, now: Ticks, rng: &mut Rng) -> SourceYield {
        // Draw order mirrors SyntheticSource::next_task exactly.
        let interarrival = self.draw_interarrival(now, rng);
        let required_time = rng.uniform_inclusive(self.time_lo, self.time_hi);
        let phantom = rng.bernoulli(self.phantom_fraction);
        let (preferred, needed_area) = if phantom || self.num_configs == 0 {
            let area = rng.uniform_inclusive(self.area_lo, self.area_hi);
            (PreferredConfig::Phantom { area }, area)
        } else {
            let c = ConfigId::from_index(rng.index(self.num_configs));
            (PreferredConfig::Known(c), 0)
        };
        let data_bytes = required_time.saturating_mul(8);
        self.yielded += 1;
        SourceYield::Task(TaskSpec {
            interarrival,
            required_time,
            preferred,
            needed_area,
            data_bytes,
        })
    }

    fn source_kind(&self) -> &'static str {
        "open"
    }

    fn source_cursor(&self) -> u64 {
        self.yielded
    }

    fn restore_cursor(&mut self, cursor: u64) -> bool {
        // All draw state lives in the checkpointed RNG; the cursor is
        // the yielded-task count, restored so subsequent snapshots keep
        // counting from the right position.
        self.yielded = cursor;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticSource;
    use dreamsim_engine::params::{ReconfigMode, ServiceParams};

    fn service_params(day_length: u64, amplitude: u32) -> SimParams {
        let mut p = SimParams::paper(100, 1000, ReconfigMode::Partial);
        p.arrival = ArrivalDistribution::Poisson;
        p.service = Some(ServiceParams {
            horizon: 50_000,
            day_length,
            amplitude_permille: amplitude,
            window: 0,
            window_retain: 0,
        });
        p
    }

    fn draw(src: &mut impl TaskSource, now: Ticks, rng: &mut Rng) -> TaskSpec {
        match src.next_task(now, rng) {
            SourceYield::Task(t) => t,
            other => panic!("open source yielded {other:?}"),
        }
    }

    #[test]
    fn triangle_wave_hits_trough_peak_and_stays_in_range() {
        let day = 1000;
        assert_eq!(triangle_permille(0, day), -1000);
        assert_eq!(triangle_permille(day / 2, day), 1000);
        for phase in 0..day {
            let t = triangle_permille(phase, day);
            assert!((-1000..=1000).contains(&t), "phase {phase}: {t}");
        }
        // Odd day lengths stay in range too.
        for phase in 0..999 {
            let t = triangle_permille(phase, 999);
            assert!((-1000..=1000).contains(&t), "phase {phase}: {t}");
        }
    }

    #[test]
    fn zero_amplitude_matches_the_synthetic_source_bit_for_bit() {
        let p = service_params(2_000, 0);
        let mut open = OpenSource::from_params(&p);
        let mut synth = SyntheticSource::from_params(&p);
        let mut rng_a = Rng::seed_from(42);
        let mut rng_b = Rng::seed_from(42);
        for now in 0..3_000u64 {
            let a = draw(&mut open, now, &mut rng_a);
            let b = match synth.next_task(now, &mut rng_b) {
                SourceYield::Task(t) => t,
                other => panic!("synthetic source yielded {other:?}"),
            };
            assert_eq!(a, b, "divergence at now={now}");
        }
    }

    #[test]
    fn peak_load_compresses_interarrivals_versus_the_trough() {
        let day = 10_000u64;
        let p = service_params(day, 800);
        let mean_at = |now: Ticks| {
            let mut src = OpenSource::from_params(&p);
            let mut rng = Rng::seed_from(7);
            let n = 4_000;
            let sum: u64 = (0..n)
                .map(|_| draw(&mut src, now, &mut rng).interarrival)
                .sum();
            sum as f64 / f64::from(n)
        };
        let trough = mean_at(0); // tri = -1000: slowest arrivals
        let peak = mean_at(day / 2); // tri = +1000: fastest arrivals
        assert!(
            peak * 2.0 < trough,
            "peak mean {peak} should be well under trough mean {trough}"
        );
    }

    #[test]
    fn burst_window_composes_with_the_diurnal_curve() {
        let mut p = service_params(10_000, 0);
        p.burst = Some(BurstWindow {
            start: 100,
            end: 200,
            interval: 3,
        });
        p.arrival = ArrivalDistribution::Uniform;
        let mut src = OpenSource::from_params(&p);
        let mut rng = Rng::seed_from(9);
        for _ in 0..500 {
            let t = draw(&mut src, 150, &mut rng);
            assert!((1..=3).contains(&t.interarrival));
        }
    }

    #[test]
    fn cursor_counts_yields_and_round_trips() {
        let p = service_params(2_000, 300);
        let mut src = OpenSource::from_params(&p);
        let mut rng = Rng::seed_from(5);
        assert_eq!(src.source_cursor(), 0);
        for _ in 0..17 {
            let _ = draw(&mut src, 0, &mut rng);
        }
        assert_eq!(src.source_cursor(), 17);
        let mut fresh = OpenSource::from_params(&p);
        assert!(fresh.restore_cursor(17));
        assert_eq!(fresh.source_cursor(), 17);
        assert_eq!(fresh.source_kind(), "open");
    }
}
