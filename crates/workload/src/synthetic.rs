//! Synthetic task generation (the paper's evaluation workload).
//!
//! Per Table II: inter-arrival interval U\[1..`NextTaskMaxInterval`\],
//! `t_required` U\[100..100 000\], preferred configuration uniform over
//! the configuration list except that a `closest_match_fraction` of
//! tasks (15 %) prefer a phantom configuration whose area is drawn from
//! the configuration-area range, forcing the scheduler down the
//! closest-match path.

use dreamsim_engine::params::{ArrivalDistribution, BurstWindow, SimParams};
use dreamsim_engine::sim::{SourceYield, TaskSource, TaskSpec};
use dreamsim_model::{ConfigId, PreferredConfig, Ticks};
use dreamsim_rng::Rng;

/// Parameterized random task stream.
#[derive(Clone, Debug)]
pub struct SyntheticSource {
    /// Upper bound of the uniform inter-arrival interval.
    max_interval: u64,
    /// Arrival process.
    arrival: ArrivalDistribution,
    /// `t_required` bounds (inclusive).
    time_lo: u64,
    time_hi: u64,
    /// Phantom-preference area bounds (inclusive; the config-area range).
    area_lo: u64,
    area_hi: u64,
    /// Number of configurations preferences index into.
    num_configs: usize,
    /// Fraction of tasks with a phantom preference.
    phantom_fraction: f64,
    /// Overload burst window (chaos layer): inside `[start, end)` the
    /// inter-arrival bound drops to `interval`. `None` leaves the draw
    /// sequence untouched.
    burst: Option<BurstWindow>,
}

impl SyntheticSource {
    /// Build the generator the paper's experiments use, directly from
    /// the simulation parameters.
    #[must_use]
    pub fn from_params(params: &SimParams) -> Self {
        Self {
            max_interval: params.next_task_max_interval,
            arrival: params.arrival,
            time_lo: params.task_time.lo,
            time_hi: params.task_time.hi,
            area_lo: params.config_area.lo,
            area_hi: params.config_area.hi,
            num_configs: params.total_configs,
            phantom_fraction: params.closest_match_fraction,
            burst: params.burst,
        }
    }

    fn draw_interarrival(&self, now: Ticks, rng: &mut Rng) -> Ticks {
        // Inside a configured burst window the upper bound tightens to
        // the burst interval; the draw count is unchanged either way, so
        // burst-free runs consume the identical RNG sequence.
        let max_interval = match self.burst {
            Some(b) if (b.start..b.end).contains(&now) => b.interval,
            _ => self.max_interval,
        };
        let mean = (1.0 + max_interval as f64) / 2.0;
        match self.arrival {
            ArrivalDistribution::Uniform => rng.uniform_inclusive(1, max_interval),
            // Mean-matched alternatives; clamped to ≥ 1 tick.
            ArrivalDistribution::Poisson => rng.poisson(mean).max(1),
            ArrivalDistribution::Exponential => {
                (rng.exponential_with_mean(mean).round() as u64).max(1)
            }
        }
    }
}

impl TaskSource for SyntheticSource {
    fn next_task(&mut self, now: Ticks, rng: &mut Rng) -> SourceYield {
        let interarrival = self.draw_interarrival(now, rng);
        let required_time = rng.uniform_inclusive(self.time_lo, self.time_hi);
        let phantom = rng.bernoulli(self.phantom_fraction);
        let (preferred, needed_area) = if phantom || self.num_configs == 0 {
            let area = rng.uniform_inclusive(self.area_lo, self.area_hi);
            (PreferredConfig::Phantom { area }, area)
        } else {
            let c = ConfigId::from_index(rng.index(self.num_configs));
            // NeededArea for in-list preferences is filled in by the
            // driver from the configuration table.
            (PreferredConfig::Known(c), 0)
        };
        // Data payload: loosely proportional to compute time (bytes).
        let data_bytes = required_time.saturating_mul(8);
        SourceYield::Task(TaskSpec {
            interarrival,
            required_time,
            preferred,
            needed_area,
            data_bytes,
        })
    }

    fn source_kind(&self) -> &'static str {
        // Fully RNG-driven: the checkpointed RNG position plus the
        // parameters (from which `from_params` rebuilds this source)
        // are the entire state, so the default resume behaviour —
        // ignore the cursor — is exactly right.
        "synthetic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dreamsim_engine::params::ReconfigMode;

    fn specs(n: usize, f: impl FnOnce(&mut SimParams)) -> Vec<TaskSpec> {
        let mut p = SimParams::paper(100, n, ReconfigMode::Partial);
        f(&mut p);
        let mut src = SyntheticSource::from_params(&p);
        let mut rng = Rng::seed_from(9);
        (0..n)
            .map(|_| match src.next_task(0, &mut rng) {
                SourceYield::Task(t) => t,
                other => panic!("synthetic source yielded {other:?}"),
            })
            .collect()
    }

    #[test]
    fn fields_respect_table_ii_ranges() {
        for s in specs(20_000, |_| {}) {
            assert!((1..=50).contains(&s.interarrival));
            assert!((100..=100_000).contains(&s.required_time));
            match s.preferred {
                PreferredConfig::Known(c) => assert!(c.index() < 50),
                PreferredConfig::Phantom { area } => {
                    assert!((200..=2000).contains(&area));
                    assert_eq!(s.needed_area, area);
                }
            }
        }
    }

    #[test]
    fn phantom_fraction_close_to_fifteen_percent() {
        let ss = specs(50_000, |_| {});
        let phantoms = ss
            .iter()
            .filter(|s| matches!(s.preferred, PreferredConfig::Phantom { .. }))
            .count();
        let rate = phantoms as f64 / ss.len() as f64;
        assert!((rate - 0.15).abs() < 0.01, "rate={rate}");
    }

    #[test]
    fn known_preferences_cover_the_config_list() {
        let ss = specs(20_000, |_| {});
        let mut seen = [false; 50];
        for s in &ss {
            if let PreferredConfig::Known(c) = s.preferred {
                seen[c.index()] = true;
            }
        }
        assert!(
            seen.iter().all(|&b| b),
            "every config preferred at least once"
        );
    }

    #[test]
    fn zero_phantom_fraction_yields_only_known() {
        let ss = specs(5_000, |p| p.closest_match_fraction = 0.0);
        assert!(ss
            .iter()
            .all(|s| matches!(s.preferred, PreferredConfig::Known(_))));
    }

    #[test]
    fn all_phantom_when_fraction_is_one() {
        let ss = specs(5_000, |p| p.closest_match_fraction = 1.0);
        assert!(ss
            .iter()
            .all(|s| matches!(s.preferred, PreferredConfig::Phantom { .. })));
    }

    #[test]
    fn poisson_and_exponential_arrivals_match_uniform_mean() {
        let mean_of = |d: ArrivalDistribution| {
            let ss = specs(50_000, |p| p.arrival = d);
            ss.iter().map(|s| s.interarrival as f64).sum::<f64>() / ss.len() as f64
        };
        let u = mean_of(ArrivalDistribution::Uniform);
        let p = mean_of(ArrivalDistribution::Poisson);
        let e = mean_of(ArrivalDistribution::Exponential);
        assert!((u - 25.5).abs() < 0.5, "uniform mean {u}");
        assert!((p - 25.5).abs() < 0.5, "poisson mean {p}");
        // The ≥1 clamp slightly inflates the geometric mean.
        assert!((e - 25.5).abs() < 1.5, "exponential mean {e}");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let a = specs(100, |_| {});
        let b = specs(100, |_| {});
        assert_eq!(a, b);
    }

    #[test]
    fn burst_window_tightens_interarrivals_inside_the_window() {
        use dreamsim_engine::params::BurstWindow;
        let mut p = SimParams::paper(100, 1000, ReconfigMode::Partial);
        p.burst = Some(BurstWindow {
            start: 100,
            end: 200,
            interval: 3,
        });
        let mut src = SyntheticSource::from_params(&p);
        let mut rng = Rng::seed_from(9);
        for now in [100u64, 150, 199] {
            for _ in 0..500 {
                match src.next_task(now, &mut rng) {
                    SourceYield::Task(t) => assert!((1..=3).contains(&t.interarrival)),
                    other => panic!("synthetic source yielded {other:?}"),
                }
            }
        }
        // The window end is exclusive: at `end` the normal bound applies.
        let wide = (0..2000).any(|_| match src.next_task(200, &mut rng) {
            SourceYield::Task(t) => t.interarrival > 3,
            other => panic!("synthetic source yielded {other:?}"),
        });
        assert!(wide, "outside the window the full range must return");
    }

    #[test]
    fn zero_length_burst_window_is_never_active() {
        use dreamsim_engine::params::BurstWindow;
        // Validation rejects start >= end, but the source must also be
        // safe by construction: an empty [start, start) range contains
        // no tick, so the draw sequence is bit-identical to burst-free.
        let plain = specs(2_000, |_| {});
        let degenerate = specs(2_000, |p| {
            p.burst = Some(BurstWindow {
                start: 0,
                end: 0,
                interval: 1,
            });
        });
        assert_eq!(plain, degenerate);
    }

    #[test]
    fn burst_window_past_the_horizon_is_rng_neutral() {
        use dreamsim_engine::params::BurstWindow;
        // A window that opens after every arrival in the run has been
        // drawn never activates and never perturbs the RNG stream.
        let plain = specs(2_000, |_| {});
        let future = specs(2_000, |p| {
            p.burst = Some(BurstWindow {
                start: u64::MAX - 1,
                end: u64::MAX,
                interval: 1,
            });
        });
        assert_eq!(plain, future);
    }

    #[test]
    fn burst_window_overlapping_the_stream_boundary_is_half_open() {
        use dreamsim_engine::params::BurstWindow;
        // A window straddling tick 0 is active at its first tick and
        // inactive from `end` onward, and the per-task draw count is
        // one either way: draws outside the window stay bit-identical
        // to the burst-free stream even when the window overlaps the
        // sampled range.
        let mut p = SimParams::paper(100, 1000, ReconfigMode::Partial);
        p.burst = Some(BurstWindow {
            start: 0,
            end: 50,
            interval: 2,
        });
        let mut src = SyntheticSource::from_params(&p);
        let mut rng = Rng::seed_from(11);
        for _ in 0..500 {
            match src.next_task(0, &mut rng) {
                SourceYield::Task(t) => assert!((1..=2).contains(&t.interarrival)),
                other => panic!("synthetic source yielded {other:?}"),
            }
        }
        // From `end` onward the draws match a burst-free source that
        // consumed the same number of draws beforehand.
        let mut plain = SyntheticSource::from_params(&{
            let mut q = p.clone();
            q.burst = None;
            q
        });
        let mut rng_plain = Rng::seed_from(11);
        for _ in 0..500 {
            let _ = plain.next_task(0, &mut rng_plain);
        }
        for _ in 0..500 {
            let a = match src.next_task(50, &mut rng) {
                SourceYield::Task(t) => t,
                other => panic!("synthetic source yielded {other:?}"),
            };
            let b = match plain.next_task(50, &mut rng_plain) {
                SourceYield::Task(t) => t,
                other => panic!("synthetic source yielded {other:?}"),
            };
            assert_eq!(a, b);
        }
    }

    #[test]
    fn burst_outside_the_window_leaves_the_draw_sequence_untouched() {
        use dreamsim_engine::params::BurstWindow;
        // All specs are drawn at now=0, outside this window, so the RNG
        // sequence must be bit-identical to a burst-free source.
        let plain = specs(2_000, |_| {});
        let burst = specs(2_000, |p| {
            p.burst = Some(BurstWindow {
                start: 100,
                end: 200,
                interval: 2,
            });
        });
        assert_eq!(plain, burst);
    }
}
