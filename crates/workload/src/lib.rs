//! # dreamsim-workload
//!
//! The DReAMSim input subsystem: sources of application tasks.
//!
//! * [`synthetic`] — the paper's synthetic task generation: uniform
//!   inter-arrival intervals (Table II), `t_required` drawn from a range,
//!   and a configurable fraction of tasks preferring a configuration
//!   that is *not* in the configuration list (15 % in the paper),
//!   exercising the closest-match path. Poisson and geometric arrival
//!   processes are available, matching the input subsystem's promise of
//!   user-specified "arrival rate and arrival distribution functions".
//! * [`open`] — the open-system service workload (`dreamsim serve`):
//!   an unbounded arrival stream modulated by a deterministic integer
//!   diurnal load curve, composed with chaos-layer burst windows, with
//!   a resume cursor for checkpoint-ring recovery.
//! * [`trace`] — a plain-text trace format for "real workloads": record
//!   a synthetic run to a trace, edit or import external traces, and
//!   replay them deterministically.
//! * [`dag`] — task-graph workloads (the paper's future work:
//!   "scheduling policies to schedule task graphs"): a DAG of tasks
//!   whose children are released only when all parents have completed,
//!   driven through the engine's completion-gated
//!   [`TaskSource`](dreamsim_engine::TaskSource) protocol.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod open;
pub mod swf;
pub mod synthetic;
pub mod trace;

pub use dag::{DagError, DagSource, DagSpec, DagTask};
pub use open::OpenSource;
pub use swf::{import_swf, SwfError, SwfOptions};
pub use synthetic::SyntheticSource;
pub use trace::{ParseError, RecordingSource, TraceSource};
