//! Plain-text workload traces ("real workloads" input path).
//!
//! The format is line-oriented, inspired by the Standard Workload Format
//! used by grid archives:
//!
//! ```text
//! # dreamsim-trace v1
//! # interarrival required_time pref data_bytes
//! 12 5000 c7 4096        # prefers configuration 7
//! 3  800  p1500 0        # prefers a phantom config of area 1500
//! ```
//!
//! * blank lines and `#` comments are ignored (inline comments allowed);
//! * `pref` is `c<id>` for an in-list configuration or `p<area>` for a
//!   phantom preference;
//! * fields are whitespace-separated.
//!
//! [`TraceSource`] replays a trace; [`RecordingSource`] tees another
//! source into a trace so synthetic runs can be captured and re-run
//! identically (record → replay is property-tested).

use dreamsim_engine::sim::{SourceYield, TaskSource, TaskSpec};
use dreamsim_model::{ConfigId, PreferredConfig, TaskId, Ticks};
use dreamsim_rng::Rng;
use std::fmt::Write as _;

/// Trace parse error, with 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serialize specs into the trace format.
#[must_use]
pub fn write_trace(specs: &[TaskSpec]) -> String {
    let mut out =
        String::from("# dreamsim-trace v1\n# interarrival required_time pref data_bytes\n");
    for s in specs {
        let pref = match s.preferred {
            PreferredConfig::Known(c) => format!("c{}", c.0),
            PreferredConfig::Phantom { area } => format!("p{area}"),
        };
        let _ = writeln!(
            out,
            "{} {} {} {}",
            s.interarrival, s.required_time, pref, s.data_bytes
        );
    }
    out
}

/// Parse a trace into task specs.
pub fn parse_trace(text: &str) -> Result<Vec<TaskSpec>, ParseError> {
    let mut specs = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let body = raw.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let fields: Vec<&str> = body.split_whitespace().collect();
        if fields.len() != 4 {
            return Err(ParseError {
                line,
                message: format!("expected 4 fields, found {}", fields.len()),
            });
        }
        let num = |s: &str, what: &str| -> Result<u64, ParseError> {
            s.parse().map_err(|_| ParseError {
                line,
                message: format!("invalid {what}: {s:?}"),
            })
        };
        let interarrival = num(fields[0], "interarrival")?;
        let required_time = num(fields[1], "required_time")?;
        let pref = fields[2];
        // Split off the one-character kind tag without assuming the
        // field is ASCII (a byte-based `split_at(1)` panics on
        // multibyte garbage instead of reporting a parse error).
        let mut pref_chars = pref.chars();
        let kind = pref_chars.next().map(String::from).unwrap_or_default();
        let rest = pref_chars.as_str();
        let (preferred, needed_area) = match (kind.as_str(), rest) {
            ("c", id) => {
                let id = num(id, "config id")?;
                let id = u32::try_from(id).map_err(|_| ParseError {
                    line,
                    message: format!("config id {id} too large"),
                })?;
                (PreferredConfig::Known(ConfigId(id)), 0)
            }
            ("p", area) => {
                let area = num(area, "phantom area")?;
                (PreferredConfig::Phantom { area }, area)
            }
            _ => {
                return Err(ParseError {
                    line,
                    message: format!("preference must be c<id> or p<area>, got {pref:?}"),
                })
            }
        };
        let data_bytes = num(fields[3], "data_bytes")?;
        specs.push(TaskSpec {
            interarrival,
            required_time,
            preferred,
            needed_area,
            data_bytes,
        });
    }
    Ok(specs)
}

/// Replays a parsed trace in order; exhausted when the trace ends.
#[derive(Clone, Debug)]
pub struct TraceSource {
    specs: Vec<TaskSpec>,
    next: usize,
}

impl TraceSource {
    /// Parse trace text into a replayable source.
    pub fn from_text(text: &str) -> Result<Self, ParseError> {
        Ok(Self {
            specs: parse_trace(text)?,
            next: 0,
        })
    }

    /// Wrap already-parsed specs.
    #[must_use]
    pub fn from_specs(specs: Vec<TaskSpec>) -> Self {
        Self { specs, next: 0 }
    }

    /// Number of tasks in the trace.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

impl TaskSource for TraceSource {
    fn next_task(&mut self, _now: Ticks, _rng: &mut Rng) -> SourceYield {
        match self.specs.get(self.next) {
            Some(&s) => {
                self.next += 1;
                SourceYield::Task(s)
            }
            None => SourceYield::Exhausted,
        }
    }

    fn source_kind(&self) -> &'static str {
        "trace"
    }

    fn source_cursor(&self) -> u64 {
        self.next as u64
    }

    fn restore_cursor(&mut self, cursor: u64) -> bool {
        // Clamp so a cursor from a longer trace cannot index out of
        // bounds; `next == len` simply yields `Exhausted`.
        self.next = (cursor as usize).min(self.specs.len());
        true
    }
}

/// Tees an inner source, recording everything it yields so the run can
/// be written out as a trace afterwards.
#[derive(Clone, Debug)]
pub struct RecordingSource<S> {
    inner: S,
    recorded: Vec<TaskSpec>,
}

impl<S> RecordingSource<S> {
    /// Wrap `inner`.
    #[must_use]
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            recorded: Vec::new(),
        }
    }

    /// Everything yielded so far.
    #[must_use]
    pub fn recorded(&self) -> &[TaskSpec] {
        &self.recorded
    }

    /// Serialize the recording as trace text.
    #[must_use]
    pub fn to_trace(&self) -> String {
        write_trace(&self.recorded)
    }
}

impl<S: TaskSource> TaskSource for RecordingSource<S> {
    fn next_task(&mut self, now: Ticks, rng: &mut Rng) -> SourceYield {
        let y = self.inner.next_task(now, rng);
        if let SourceYield::Task(spec) = y {
            self.recorded.push(spec);
        }
        y
    }

    fn on_task_completed(&mut self, task: TaskId, now: Ticks) {
        self.inner.on_task_completed(task, now);
    }

    fn source_kind(&self) -> &'static str {
        // Forward the inner identity: a recording wrapper changes what
        // is observed, not what is produced, so a checkpoint taken
        // through it can resume against the bare inner source.
        self.inner.source_kind()
    }

    fn source_cursor(&self) -> u64 {
        self.inner.source_cursor()
    }

    fn restore_cursor(&mut self, cursor: u64) -> bool {
        self.inner.restore_cursor(cursor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(ia: u64, rt: u64, pref: PreferredConfig, area: u64) -> TaskSpec {
        TaskSpec {
            interarrival: ia,
            required_time: rt,
            preferred: pref,
            needed_area: area,
            data_bytes: 64,
        }
    }

    #[test]
    fn round_trip_write_parse() {
        let specs = vec![
            spec(12, 5000, PreferredConfig::Known(ConfigId(7)), 0),
            spec(3, 800, PreferredConfig::Phantom { area: 1500 }, 1500),
            spec(1, 1, PreferredConfig::Known(ConfigId(0)), 0),
        ];
        let text = write_trace(&specs);
        let back = parse_trace(&text).unwrap();
        assert_eq!(specs, back);
    }

    #[test]
    fn comments_blank_lines_and_inline_comments() {
        let text = "\n# header\n  \n5 100 c2 0  # inline\n\n7 200 p300 8\n";
        let specs = parse_trace(text).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].interarrival, 5);
        assert_eq!(specs[1].preferred, PreferredConfig::Phantom { area: 300 });
        assert_eq!(specs[1].needed_area, 300);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_trace("5 100 c2 0\nbogus line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("4 fields"), "{}", err.message);

        let err = parse_trace("5 100 x2 0\n").unwrap_err();
        assert!(err.message.contains("c<id> or p<area>"), "{}", err.message);

        // Multibyte garbage must be a parse error, not a panic.
        let err = parse_trace("5 100 ü2 0\n").unwrap_err();
        assert!(err.message.contains("c<id> or p<area>"), "{}", err.message);
        let err = parse_trace("5 100 Ａ1 0\n").unwrap_err();
        assert!(err.message.contains("c<id> or p<area>"), "{}", err.message);

        let err = parse_trace("5 abc c2 0\n").unwrap_err();
        assert!(err.message.contains("required_time"), "{}", err.message);

        let err = parse_trace("5 100 c99999999999 0\n").unwrap_err();
        assert!(err.message.contains("too large"), "{}", err.message);
    }

    #[test]
    fn trace_source_replays_in_order_then_exhausts() {
        let specs = vec![
            spec(1, 10, PreferredConfig::Known(ConfigId(0)), 0),
            spec(2, 20, PreferredConfig::Known(ConfigId(1)), 0),
        ];
        let mut src = TraceSource::from_specs(specs.clone());
        assert_eq!(src.len(), 2);
        assert!(!src.is_empty());
        let mut rng = Rng::seed_from(0);
        assert_eq!(src.next_task(0, &mut rng), SourceYield::Task(specs[0]));
        assert_eq!(src.next_task(0, &mut rng), SourceYield::Task(specs[1]));
        assert_eq!(src.next_task(0, &mut rng), SourceYield::Exhausted);
        assert_eq!(src.next_task(0, &mut rng), SourceYield::Exhausted);
    }

    #[test]
    fn trace_cursor_save_and_restore_resumes_mid_trace() {
        let specs = vec![
            spec(1, 10, PreferredConfig::Known(ConfigId(0)), 0),
            spec(2, 20, PreferredConfig::Known(ConfigId(1)), 0),
            spec(3, 30, PreferredConfig::Known(ConfigId(2)), 0),
        ];
        let mut src = TraceSource::from_specs(specs.clone());
        let mut rng = Rng::seed_from(0);
        let _ = src.next_task(0, &mut rng);
        let _ = src.next_task(0, &mut rng);
        assert_eq!(src.source_kind(), "trace");
        let cursor = src.source_cursor();
        assert_eq!(cursor, 2);
        // A fresh source restored to the cursor continues identically.
        let mut fresh = TraceSource::from_specs(specs.clone());
        assert!(fresh.restore_cursor(cursor));
        assert_eq!(fresh.next_task(0, &mut rng), SourceYield::Task(specs[2]));
        assert_eq!(fresh.next_task(0, &mut rng), SourceYield::Exhausted);
        // Out-of-range cursors clamp to exhaustion instead of panicking.
        let mut fresh = TraceSource::from_specs(specs);
        assert!(fresh.restore_cursor(99));
        assert_eq!(fresh.next_task(0, &mut rng), SourceYield::Exhausted);
    }

    #[test]
    fn recording_source_captures_yields() {
        let specs = vec![spec(1, 10, PreferredConfig::Known(ConfigId(0)), 0)];
        let mut rec = RecordingSource::new(TraceSource::from_specs(specs.clone()));
        let mut rng = Rng::seed_from(0);
        let _ = rec.next_task(0, &mut rng);
        let _ = rec.next_task(0, &mut rng); // exhausted; not recorded
        assert_eq!(rec.recorded(), &specs[..]);
        let replay = parse_trace(&rec.to_trace()).unwrap();
        assert_eq!(replay, specs);
    }
}
