//! Task-graph (DAG) workloads — the paper's future work: "we will
//! implement scheduling policies to schedule task graphs on the
//! distributed system with reconfigurable nodes".
//!
//! A [`DagSpec`] declares tasks and precedence edges; [`DagSource`]
//! releases a task only after **all** its parents have completed, using
//! the engine's completion-gated source protocol
//! ([`SourceYield::NotYet`] + `on_task_completed`). Tasks released
//! together dispatch in declaration order.
//!
//! The source relies on the engine's id contract (the `k`-th yielded
//! task gets `TaskId(k)`), so it must be the run's only task source.

use dreamsim_engine::sim::{SourceYield, TaskSource, TaskSpec};
use dreamsim_model::{Area, PreferredConfig, TaskId, Ticks};
use dreamsim_rng::Rng;
use std::collections::VecDeque;

/// One task in a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DagTask {
    /// Execution time (`t_required`).
    pub required_time: Ticks,
    /// Preferred configuration.
    pub preferred: PreferredConfig,
    /// Area of the preferred configuration (phantoms only; in-list
    /// preferences are filled from the configuration table).
    pub needed_area: Area,
    /// Input data size.
    pub data_bytes: u64,
    /// Dispatch latency once released (the inter-arrival delta the task
    /// is injected with; models result-transfer/launch overhead between
    /// dependent tasks).
    pub release_latency: Ticks,
}

impl DagTask {
    /// A task with the given runtime and preference, zero payload and
    /// one tick of release latency.
    #[must_use]
    pub fn new(required_time: Ticks, preferred: PreferredConfig) -> Self {
        let needed_area = match preferred {
            PreferredConfig::Phantom { area } => area,
            PreferredConfig::Known(_) => 0,
        };
        Self {
            required_time,
            preferred,
            needed_area,
            data_bytes: 0,
            release_latency: 1,
        }
    }
}

/// Errors constructing a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// An edge endpoint names a nonexistent task.
    InvalidEdge {
        /// Edge source.
        from: usize,
        /// Edge target.
        to: usize,
        /// Number of tasks in the graph.
        len: usize,
    },
    /// An edge from a task to itself.
    SelfLoop(usize),
    /// The edges contain a cycle, so some tasks can never be released.
    Cycle,
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::InvalidEdge { from, to, len } => {
                write!(f, "edge {from}->{to} out of bounds for {len} tasks")
            }
            DagError::SelfLoop(i) => write!(f, "self-loop on task {i}"),
            DagError::Cycle => write!(f, "task graph contains a cycle"),
        }
    }
}

impl std::error::Error for DagError {}

/// A task graph: tasks plus precedence edges (`from` must complete
/// before `to` is released).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DagSpec {
    tasks: Vec<DagTask>,
    edges: Vec<(usize, usize)>,
}

impl DagSpec {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a task; returns its graph index.
    pub fn add_task(&mut self, task: DagTask) -> usize {
        self.tasks.push(task);
        self.tasks.len() - 1
    }

    /// Add a precedence edge `from → to`.
    pub fn add_edge(&mut self, from: usize, to: usize) -> Result<(), DagError> {
        let len = self.tasks.len();
        if from >= len || to >= len {
            return Err(DagError::InvalidEdge { from, to, len });
        }
        if from == to {
            return Err(DagError::SelfLoop(from));
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the graph has no tasks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The precedence edges.
    #[must_use]
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// A linear pipeline `t0 → t1 → … `.
    ///
    /// Edges are pushed directly: every index comes from `add_task`
    /// above and consecutive indices are distinct, so the
    /// [`add_edge`](Self::add_edge) validation cannot fail here.
    #[must_use]
    pub fn chain(tasks: Vec<DagTask>) -> Self {
        let mut spec = Self::new();
        let ids: Vec<usize> = tasks.into_iter().map(|t| spec.add_task(t)).collect();
        for w in ids.windows(2) {
            spec.edges.push((w[0], w[1]));
        }
        spec
    }

    /// A fork-join: `source → each worker → sink`.
    ///
    /// Edges are pushed directly: source, workers, and sink all get
    /// distinct indices from `add_task`, so the
    /// [`add_edge`](Self::add_edge) validation cannot fail here.
    #[must_use]
    pub fn fork_join(source: DagTask, workers: Vec<DagTask>, sink: DagTask) -> Self {
        let mut spec = Self::new();
        let s = spec.add_task(source);
        let ws: Vec<usize> = workers.into_iter().map(|t| spec.add_task(t)).collect();
        let k = spec.add_task(sink);
        for w in ws {
            spec.edges.push((s, w));
            spec.edges.push((w, k));
        }
        spec
    }

    /// Validate acyclicity (Kahn's algorithm) and return the topological
    /// level of each task (0 = roots).
    pub fn validate(&self) -> Result<Vec<usize>, DagError> {
        let n = self.tasks.len();
        let mut indegree = vec![0usize; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(from, to) in &self.edges {
            if from >= n || to >= n {
                return Err(DagError::InvalidEdge { from, to, len: n });
            }
            indegree[to] += 1;
            children[from].push(to);
        }
        let mut level = vec![0usize; n];
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = queue.pop_front() {
            seen += 1;
            for &v in &children[u] {
                level[v] = level[v].max(level[u] + 1);
                indegree[v] -= 1;
                if indegree[v] == 0 {
                    queue.push_back(v);
                }
            }
        }
        if seen != n {
            return Err(DagError::Cycle);
        }
        Ok(level)
    }
}

/// Completion-gated source over a validated [`DagSpec`].
#[derive(Clone, Debug)]
pub struct DagSource {
    tasks: Vec<DagTask>,
    children: Vec<Vec<usize>>,
    indegree: Vec<usize>,
    ready: VecDeque<usize>,
    /// Yield order → graph index (engine id contract).
    yielded: Vec<usize>,
}

impl DagSource {
    /// Build a source; fails on cyclic or malformed graphs.
    pub fn new(spec: DagSpec) -> Result<Self, DagError> {
        spec.validate()?;
        let n = spec.tasks.len();
        let mut indegree = vec![0usize; n];
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(from, to) in &spec.edges {
            indegree[to] += 1;
            children[from].push(to);
        }
        let ready: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        Ok(Self {
            tasks: spec.tasks,
            children,
            indegree,
            ready,
            yielded: Vec::new(),
        })
    }

    /// Number of tasks not yet yielded.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.tasks.len() - self.yielded.len()
    }
}

impl TaskSource for DagSource {
    fn next_task(&mut self, _now: Ticks, _rng: &mut Rng) -> SourceYield {
        match self.ready.pop_front() {
            Some(idx) => {
                self.yielded.push(idx);
                let t = &self.tasks[idx];
                SourceYield::Task(TaskSpec {
                    interarrival: t.release_latency,
                    required_time: t.required_time,
                    preferred: t.preferred,
                    needed_area: t.needed_area,
                    data_bytes: t.data_bytes,
                })
            }
            None if self.yielded.len() == self.tasks.len() => SourceYield::Exhausted,
            None => SourceYield::NotYet,
        }
    }

    fn on_task_completed(&mut self, task: TaskId, _now: Ticks) {
        let Some(&idx) = self.yielded.get(task.index()) else {
            return; // not ours (defensive; ids are dense in yield order)
        };
        for child_pos in 0..self.children[idx].len() {
            let child = self.children[idx][child_pos];
            debug_assert!(self.indegree[child] > 0);
            self.indegree[child] -= 1;
            if self.indegree[child] == 0 {
                self.ready.push_back(child);
            }
        }
    }

    fn source_kind(&self) -> &'static str {
        "dag"
    }

    fn source_cursor(&self) -> u64 {
        self.yielded.len() as u64
    }

    fn restore_cursor(&mut self, _cursor: u64) -> bool {
        // The ready queue's order depends on the order of past
        // completions, which a cursor cannot reconstruct — refuse to
        // resume rather than replay from a wrong gating state.
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dreamsim_model::ConfigId;

    fn t(rt: Ticks) -> DagTask {
        DagTask::new(rt, PreferredConfig::Known(ConfigId(0)))
    }

    #[test]
    fn chain_releases_one_at_a_time() {
        let spec = DagSpec::chain(vec![t(10), t(20), t(30)]);
        let mut src = DagSource::new(spec).unwrap();
        let mut rng = Rng::seed_from(0);
        // Only the root is ready.
        assert!(
            matches!(src.next_task(0, &mut rng), SourceYield::Task(s) if s.required_time == 10)
        );
        assert_eq!(src.next_task(0, &mut rng), SourceYield::NotYet);
        // Completing task 0 unlocks task 1.
        src.on_task_completed(TaskId(0), 100);
        assert!(
            matches!(src.next_task(100, &mut rng), SourceYield::Task(s) if s.required_time == 20)
        );
        assert_eq!(src.next_task(100, &mut rng), SourceYield::NotYet);
        src.on_task_completed(TaskId(1), 200);
        assert!(
            matches!(src.next_task(200, &mut rng), SourceYield::Task(s) if s.required_time == 30)
        );
        src.on_task_completed(TaskId(2), 300);
        assert_eq!(src.next_task(300, &mut rng), SourceYield::Exhausted);
    }

    #[test]
    fn fork_join_gates_sink_on_all_workers() {
        let spec = DagSpec::fork_join(t(1), vec![t(2), t(3)], t(4));
        let mut src = DagSource::new(spec).unwrap();
        let mut rng = Rng::seed_from(0);
        // Root.
        assert!(matches!(src.next_task(0, &mut rng), SourceYield::Task(_)));
        assert_eq!(src.next_task(0, &mut rng), SourceYield::NotYet);
        src.on_task_completed(TaskId(0), 10);
        // Both workers release.
        assert!(matches!(src.next_task(10, &mut rng), SourceYield::Task(_)));
        assert!(matches!(src.next_task(10, &mut rng), SourceYield::Task(_)));
        assert_eq!(src.next_task(10, &mut rng), SourceYield::NotYet);
        // One worker done: sink still gated.
        src.on_task_completed(TaskId(1), 20);
        assert_eq!(src.next_task(20, &mut rng), SourceYield::NotYet);
        src.on_task_completed(TaskId(2), 30);
        assert!(
            matches!(src.next_task(30, &mut rng), SourceYield::Task(s) if s.required_time == 4)
        );
        src.on_task_completed(TaskId(3), 40);
        assert_eq!(src.next_task(40, &mut rng), SourceYield::Exhausted);
        assert_eq!(src.remaining(), 0);
    }

    #[test]
    fn cycle_detected() {
        let mut spec = DagSpec::new();
        let a = spec.add_task(t(1));
        let b = spec.add_task(t(2));
        spec.add_edge(a, b).unwrap();
        spec.add_edge(b, a).unwrap();
        assert_eq!(DagSource::new(spec.clone()).unwrap_err(), DagError::Cycle);
        assert_eq!(spec.validate().unwrap_err(), DagError::Cycle);
    }

    #[test]
    fn invalid_edges_rejected() {
        let mut spec = DagSpec::new();
        let a = spec.add_task(t(1));
        assert_eq!(
            spec.add_edge(a, 5).unwrap_err(),
            DagError::InvalidEdge {
                from: 0,
                to: 5,
                len: 1
            }
        );
        assert_eq!(spec.add_edge(a, a).unwrap_err(), DagError::SelfLoop(0));
    }

    #[test]
    fn levels_reflect_depth() {
        let spec = DagSpec::fork_join(t(1), vec![t(2), t(3)], t(4));
        let levels = spec.validate().unwrap();
        assert_eq!(levels, vec![0, 1, 1, 2]);
    }

    #[test]
    fn independent_tasks_all_ready_immediately() {
        let mut spec = DagSpec::new();
        for i in 0..5 {
            spec.add_task(t(i + 1));
        }
        let mut src = DagSource::new(spec).unwrap();
        let mut rng = Rng::seed_from(0);
        for _ in 0..5 {
            assert!(matches!(src.next_task(0, &mut rng), SourceYield::Task(_)));
        }
        assert_eq!(src.next_task(0, &mut rng), SourceYield::Exhausted);
    }

    #[test]
    fn empty_graph_is_immediately_exhausted() {
        let mut src = DagSource::new(DagSpec::new()).unwrap();
        let mut rng = Rng::seed_from(0);
        assert_eq!(src.next_task(0, &mut rng), SourceYield::Exhausted);
    }

    #[test]
    fn dag_task_phantom_carries_area() {
        let task = DagTask::new(5, PreferredConfig::Phantom { area: 777 });
        assert_eq!(task.needed_area, 777);
    }
}
