//! The paper's headline directional claims (Section VI), asserted as
//! integration tests over full simulation runs.
//!
//! These are the qualitative shapes of Figures 6–10: with partial
//! reconfiguration the scheduler wastes less area, makes tasks wait
//! less, and does less search work; in exchange nodes are reconfigured
//! more often and configuration time per task rises.

use dreamsim::engine::{Metrics, ReconfigMode, SimParams};
use dreamsim::sweep::runner::{run_point, SweepPoint};

fn run(nodes: usize, tasks: usize, mode: ReconfigMode, seed: u64) -> Metrics {
    let mut params = SimParams::paper(nodes, tasks, mode);
    params.seed = seed;
    run_point(&SweepPoint::new("repro", params)).metrics
}

fn pair(nodes: usize, tasks: usize, seed: u64) -> (Metrics, Metrics) {
    (
        run(nodes, tasks, ReconfigMode::Full, seed),
        run(nodes, tasks, ReconfigMode::Partial, seed),
    )
}

#[test]
fn fig6_partial_wastes_less_area_per_task() {
    for (nodes, seed) in [(100, 1u64), (200, 2)] {
        let (full, partial) = pair(nodes, 1_500, seed);
        assert!(
            partial.avg_wasted_area_per_task <= full.avg_wasted_area_per_task,
            "{nodes} nodes: partial {} vs full {}",
            partial.avg_wasted_area_per_task,
            full.avg_wasted_area_per_task
        );
    }
}

#[test]
fn fig7_partial_reconfigures_nodes_more() {
    for (nodes, seed) in [(100, 3u64), (200, 4)] {
        let (full, partial) = pair(nodes, 1_500, seed);
        assert!(
            partial.avg_reconfig_count_per_node >= full.avg_reconfig_count_per_node,
            "{nodes} nodes: partial {} vs full {}",
            partial.avg_reconfig_count_per_node,
            full.avg_reconfig_count_per_node
        );
    }
}

#[test]
fn fig8_partial_tasks_wait_less() {
    for (nodes, seed) in [(100, 5u64), (200, 6)] {
        let (full, partial) = pair(nodes, 1_500, seed);
        assert!(
            partial.avg_waiting_time_per_task <= full.avg_waiting_time_per_task,
            "{nodes} nodes: partial {} vs full {}",
            partial.avg_waiting_time_per_task,
            full.avg_waiting_time_per_task
        );
    }
}

#[test]
fn fig9a_partial_needs_fewer_scheduling_steps() {
    let (full, partial) = pair(200, 1_500, 7);
    assert!(
        partial.avg_scheduling_steps_per_task <= full.avg_scheduling_steps_per_task,
        "partial {} vs full {}",
        partial.avg_scheduling_steps_per_task,
        full.avg_scheduling_steps_per_task
    );
}

#[test]
fn fig9b_partial_lowers_total_scheduler_workload() {
    let (full, partial) = pair(200, 1_500, 8);
    assert!(
        partial.total_scheduler_workload <= full.total_scheduler_workload,
        "partial {} vs full {}",
        partial.total_scheduler_workload,
        full.total_scheduler_workload
    );
}

#[test]
fn fig10_partial_pays_more_configuration_time_per_task() {
    let (full, partial) = pair(200, 1_500, 9);
    assert!(
        partial.avg_config_time_per_task >= full.avg_config_time_per_task,
        "partial {} vs full {}",
        partial.avg_config_time_per_task,
        full.avg_config_time_per_task
    );
}

#[test]
fn saturated_small_cluster_waits_longer_than_large_one() {
    // The paper's 100-node runs show far higher waiting times than the
    // 200-node runs under the same arrival process.
    let small = run(100, 1_500, ReconfigMode::Partial, 10);
    let large = run(200, 1_500, ReconfigMode::Partial, 10);
    assert!(
        small.avg_waiting_time_per_task >= large.avg_waiting_time_per_task,
        "100 nodes {} vs 200 nodes {}",
        small.avg_waiting_time_per_task,
        large.avg_waiting_time_per_task
    );
}

#[test]
fn accounting_identities_hold() {
    for mode in [ReconfigMode::Full, ReconfigMode::Partial] {
        let m = run(100, 1_000, mode, 11);
        assert_eq!(
            m.total_tasks_completed + m.total_discarded_tasks,
            m.total_tasks_generated,
            "{mode}: every task ends terminal"
        );
        assert_eq!(
            m.total_scheduler_workload,
            m.scheduler_search_length + m.housekeeping_steps,
            "{mode}: workload is search + housekeeping"
        );
        let placed = m.phases.allocation
            + m.phases.configuration
            + m.phases.partial_configuration
            + m.phases.partial_reconfiguration;
        assert!(
            placed >= m.total_tasks_completed,
            "{mode}: placements cover completions"
        );
        assert!(m.total_used_nodes <= m.total_nodes, "{mode}");
        if mode == ReconfigMode::Full {
            assert_eq!(
                m.phases.partial_configuration, 0,
                "full mode never partially configures"
            );
        }
    }
}

#[test]
fn partial_mode_actually_co_hosts_tasks() {
    // The defining capability: at least some placements use the
    // partial-configuration phase (multiple configs per node).
    let m = run(200, 1_500, ReconfigMode::Partial, 12);
    assert!(
        m.phases.partial_configuration > 0,
        "expected partial configurations, got {:?}",
        m.phases
    );
}
