//! Seed-golden figures test: pins the `dreamsim figures` series for the
//! 100/200-node × 500/1000/2000-task grid at the CLI's default seed
//! (2012), and proves the indexed search backend regenerates every
//! figure byte-for-byte identically to the paper-faithful linear walk.
//!
//! If an intentional model change shifts these numbers, regenerate the
//! constants with `cargo test --test figures_golden -- --nocapture`
//! (each failing assert prints the actual CSV).

use dreamsim::engine::SearchBackend;
use dreamsim::sweep::{ExperimentGrid, Figure};

const NODES: [usize; 2] = [100, 200];
const TASKS: [usize; 3] = [500, 1_000, 2_000];
const SEED: u64 = 2012; // `dreamsim figures` default

fn grid(backend: SearchBackend) -> ExperimentGrid {
    ExperimentGrid::run_with_backend(&NODES, &TASKS, SEED, 4, backend)
}

/// Expected `FigureSeries::to_csv` output per figure, in paper order.
const GOLDEN: [(&str, &str); 9] = [
    (
        "6a",
        "tasks,without_partial,with_partial\n\
         500,1275.516,410.082\n\
         1000,1411.771,290.689\n\
         2000,1331.817,170.0095\n",
    ),
    (
        "6b",
        "tasks,without_partial,with_partial\n\
         500,1305.336,719.524\n\
         1000,1351.05,428.436\n\
         2000,1476.495,272.03\n",
    ),
    (
        "7a",
        "tasks,without_partial,with_partial\n\
         500,1.76,4.58\n\
         1000,2.23,8.66\n\
         2000,2.16,15.4\n",
    ),
    (
        "7b",
        "tasks,without_partial,with_partial\n\
         500,1.425,2.385\n\
         1000,1.6,4.415\n\
         2000,1.905,8.15\n",
    ),
    (
        "8a",
        "tasks,without_partial,with_partial\n\
         500,86142.592,21589.798\n\
         1000,203076.676,63029.953\n\
         2000,437123.3725,164689.989\n",
    ),
    (
        "8b",
        "tasks,without_partial,with_partial\n\
         500,26431.77,183.226\n\
         1000,80892.93,15832.101\n\
         2000,195027.169,48440.4135\n",
    ),
    (
        "9a",
        "tasks,without_partial,with_partial\n\
         500,3128.806,723.118\n\
         1000,3805.804,1973.809\n\
         2000,4093.562,2266.655\n",
    ),
    (
        "9b",
        "tasks,without_partial,with_partial\n\
         500,53609869,7121613\n\
         1000,131821881,52905593\n\
         2000,284272083,116071445\n",
    ),
    (
        "10",
        "tasks,without_partial,with_partial\n\
         500,8.624,14.416\n\
         1000,4.994,13.675\n\
         2000,2.71,11.5835\n",
    ),
];

/// Regeneration helper: `cargo test --test figures_golden dump_golden --
/// --ignored --nocapture` prints the constants block to paste above.
#[test]
#[ignore = "regeneration helper, not a check"]
fn dump_golden() {
    let g = grid(SearchBackend::Linear);
    for (id, _) in GOLDEN {
        let csv = g.figure(Figure::parse(id).unwrap()).to_csv();
        println!("--- figure {id} ---\n{csv}");
    }
}

#[test]
fn figures_grid_matches_golden_series_under_both_backends() {
    for backend in [SearchBackend::Linear, SearchBackend::Indexed] {
        let g = grid(backend);
        for (id, want) in GOLDEN {
            let fig = Figure::parse(id).unwrap();
            let got = g.figure(fig).to_csv();
            assert_eq!(
                got, want,
                "{backend} backend, figure {id}: series drifted from the \
                 seed-{SEED} golden values.\nactual CSV:\n{got}"
            );
        }
    }
}
