//! Differential equivalence suite for the derived-state backends.
//!
//! Search backends (DESIGN.md §11): every policy × reconfiguration mode
//! × fault-injection cell must produce **byte-identical** reports and
//! checkpoints under the linear and indexed backends, and a run may
//! switch backends at any checkpoint boundary without perturbing
//! anything.
//!
//! Scale backends (DESIGN.md §16): the calendar event queue must be
//! byte-identical to the binary heap — reports *and* checkpoints —
//! across policies × drivers × fault-on/off, and the quantile-sketch
//! statistics must render byte-identical reports at exact-capable sizes
//! (below the sketch's 4096-sample exact window).

use dreamsim::engine::{
    read_checkpoint, EventQueueBackend, ReconfigMode, RunOptions, RunResult, SearchBackend,
    SimParams, Simulation, StatsBackend,
};
use dreamsim::sched::{AllocationStrategy, CaseStudyScheduler};
use dreamsim::workload::SyntheticSource;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

const STRATEGIES: [AllocationStrategy; 5] = [
    AllocationStrategy::BestFit,
    AllocationStrategy::FirstFit,
    AllocationStrategy::WorstFit,
    AllocationStrategy::Random,
    AllocationStrategy::LeastLoaded,
];

fn params(mode: ReconfigMode, faults: bool, seed: u64) -> SimParams {
    let mut p = SimParams::paper(20, 200, mode);
    p.seed = seed;
    // Short tasks keep the 40-cell grid fast.
    p.task_time = dreamsim::engine::params::Range::new(10, 2_000);
    if faults {
        p.faults.node_mttf = Some(20_000);
        p.faults.node_mttr = 2_000;
        p.faults.reconfig_fail_prob = 0.15;
        p.faults.task_fail_prob = 0.05;
        p.faults.suspension_deadline = Some(100_000);
    }
    p
}

fn fresh_dir(tag: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    // lint: allow(r2) -- scratch directory for test artifacts, never simulator state
    let dir = std::env::temp_dir().join(format!(
        "dreamsim-diff-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_cell(
    p: &SimParams,
    strategy: AllocationStrategy,
    backend: SearchBackend,
    checkpoint_dir: Option<&Path>,
) -> RunResult {
    let opts = RunOptions {
        checkpoint_every: checkpoint_dir.map(|_| 5_000),
        checkpoint_dir: checkpoint_dir.map(Path::to_path_buf),
        ..RunOptions::default()
    };
    Simulation::new(
        p.clone(),
        SyntheticSource::from_params(p),
        CaseStudyScheduler::with_strategy(strategy),
    )
    .unwrap()
    .with_search_backend(backend)
    .run_with(&opts)
    .unwrap()
}

/// Sorted checkpoint file names and their raw bytes.
fn checkpoint_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|f| {
            let name = f.file_name().unwrap().to_string_lossy().into_owned();
            (name, std::fs::read(&f).unwrap())
        })
        .collect()
}

/// The tentpole guarantee: every policy × mode × fault cell is
/// byte-identical across backends — reports (XML and JSON) *and* every
/// mid-run checkpoint file written along the way.
#[test]
fn full_grid_reports_and_checkpoints_byte_identical() {
    for strategy in STRATEGIES {
        for mode in [ReconfigMode::Full, ReconfigMode::Partial] {
            for faults in [false, true] {
                let cell = format!("{strategy:?}/{mode:?}/faults={faults}");
                let p = params(mode, faults, 0xD1FF);
                let lin_dir = fresh_dir("lin");
                let idx_dir = fresh_dir("idx");
                let lin = run_cell(&p, strategy, SearchBackend::Linear, Some(&lin_dir));
                let idx = run_cell(&p, strategy, SearchBackend::Indexed, Some(&idx_dir));
                assert_eq!(lin.metrics, idx.metrics, "{cell}: metrics");
                assert_eq!(
                    lin.report.to_xml(),
                    idx.report.to_xml(),
                    "{cell}: XML report"
                );
                assert_eq!(
                    lin.report.to_json(),
                    idx.report.to_json(),
                    "{cell}: JSON report"
                );
                assert_eq!(lin.tasks, idx.tasks, "{cell}: task table");
                let lin_cps = checkpoint_files(&lin_dir);
                let idx_cps = checkpoint_files(&idx_dir);
                assert!(
                    !lin_cps.is_empty(),
                    "{cell}: grid cells must actually checkpoint"
                );
                assert_eq!(
                    lin_cps.len(),
                    idx_cps.len(),
                    "{cell}: checkpoint cadence diverged"
                );
                for ((ln, lb), (in_, ib)) in lin_cps.iter().zip(&idx_cps) {
                    assert_eq!(ln, in_, "{cell}: checkpoint file names");
                    assert_eq!(lb, ib, "{cell}: checkpoint {ln} not byte-identical");
                }
                std::fs::remove_dir_all(&lin_dir).ok();
                std::fs::remove_dir_all(&idx_dir).ok();
            }
        }
    }
}

/// Resume-mid-run-then-switch-backend: a checkpoint taken under one
/// backend can be resumed under the other (in both directions), and
/// every combination finishes with the uninterrupted run's exact
/// report.
#[test]
fn resume_mid_run_and_switch_backend() {
    let p = params(ReconfigMode::Partial, true, 0x5EED5);
    let reference = run_cell(&p, AllocationStrategy::BestFit, SearchBackend::Linear, None);
    for writer in [SearchBackend::Linear, SearchBackend::Indexed] {
        let dir = fresh_dir("switch");
        let _ = run_cell(&p, AllocationStrategy::BestFit, writer, Some(&dir));
        let files = checkpoint_files(&dir);
        assert!(files.len() >= 2, "need a mid-run checkpoint to switch at");
        // A middle checkpoint, not the last one: real work remains.
        let mid = &files[files.len() / 2].0;
        for resumer in [SearchBackend::Linear, SearchBackend::Indexed] {
            let cp = read_checkpoint(&dir.join(mid)).unwrap();
            let resumed = Simulation::resume(
                cp,
                SyntheticSource::from_params(&p),
                CaseStudyScheduler::new(),
            )
            .unwrap()
            .with_search_backend(resumer)
            .run_with(&RunOptions::default())
            .unwrap();
            assert_eq!(
                resumed.report.to_xml(),
                reference.report.to_xml(),
                "wrote under {writer}, resumed {mid} under {resumer}"
            );
            assert_eq!(resumed.metrics, reference.metrics);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Which simulation driver a differential cell runs under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Driver {
    /// Event-driven clock (the default).
    Event,
    /// Literal tick-by-tick clock (ablation A4); probes the queue with
    /// one `pop_due` miss per idle tick, the calendar's cursor hot path.
    Tick,
}

/// Run one cell under an explicit queue/stats backend pair and driver.
fn run_cell_scale(
    p: &SimParams,
    strategy: AllocationStrategy,
    queue: EventQueueBackend,
    stats: StatsBackend,
    driver: Driver,
    checkpoint_dir: Option<&Path>,
) -> RunResult {
    let opts = RunOptions {
        checkpoint_every: checkpoint_dir.map(|_| 5_000),
        checkpoint_dir: checkpoint_dir.map(Path::to_path_buf),
        ..RunOptions::default()
    };
    let sim = Simulation::new(
        p.clone(),
        SyntheticSource::from_params(p),
        CaseStudyScheduler::with_strategy(strategy),
    )
    .unwrap()
    .with_event_queue_backend(queue)
    .with_stats_backend(stats);
    match driver {
        Driver::Event => sim.run_with(&opts),
        Driver::Tick => sim.run_tick_stepped_with(&opts),
    }
    .unwrap()
}

/// Scale-backend tentpole guarantee, queue half: the calendar event
/// queue is byte-identical to the binary heap — reports (XML and JSON),
/// metrics, task tables, *and* every mid-run checkpoint — across every
/// policy × driver × fault cell.
#[test]
fn queue_backend_grid_reports_and_checkpoints_byte_identical() {
    for strategy in STRATEGIES {
        for driver in [Driver::Event, Driver::Tick] {
            for faults in [false, true] {
                let cell = format!("{strategy:?}/{driver:?}/faults={faults}");
                let p = params(ReconfigMode::Partial, faults, 0xCA1);
                let heap_dir = fresh_dir("heap");
                let cal_dir = fresh_dir("cal");
                let heap = run_cell_scale(
                    &p,
                    strategy,
                    EventQueueBackend::Heap,
                    StatsBackend::Exact,
                    driver,
                    Some(&heap_dir),
                );
                let cal = run_cell_scale(
                    &p,
                    strategy,
                    EventQueueBackend::Calendar,
                    StatsBackend::Exact,
                    driver,
                    Some(&cal_dir),
                );
                assert_eq!(heap.metrics, cal.metrics, "{cell}: metrics");
                assert_eq!(
                    heap.report.to_xml(),
                    cal.report.to_xml(),
                    "{cell}: XML report"
                );
                assert_eq!(
                    heap.report.to_json(),
                    cal.report.to_json(),
                    "{cell}: JSON report"
                );
                assert_eq!(heap.tasks, cal.tasks, "{cell}: task table");
                let heap_cps = checkpoint_files(&heap_dir);
                let cal_cps = checkpoint_files(&cal_dir);
                assert!(
                    !heap_cps.is_empty(),
                    "{cell}: grid cells must actually checkpoint"
                );
                assert_eq!(
                    heap_cps.len(),
                    cal_cps.len(),
                    "{cell}: checkpoint cadence diverged"
                );
                for ((hn, hb), (cn, cb)) in heap_cps.iter().zip(&cal_cps) {
                    assert_eq!(hn, cn, "{cell}: checkpoint file names");
                    assert_eq!(hb, cb, "{cell}: checkpoint {hn} not byte-identical");
                }
                std::fs::remove_dir_all(&heap_dir).ok();
                std::fs::remove_dir_all(&cal_dir).ok();
            }
        }
    }
}

/// Scale-backend tentpole guarantee, stats half: at exact-capable sizes
/// (200 tasks, far below the sketch's 4096-sample exact window) the
/// quantile sketch renders byte-identical reports across every policy ×
/// driver × fault cell, and the sketch-mode checkpoints themselves are
/// byte-identical across queue backends.
#[test]
fn stats_backend_reports_byte_identical_below_exact_window() {
    for strategy in STRATEGIES {
        for driver in [Driver::Event, Driver::Tick] {
            for faults in [false, true] {
                let cell = format!("{strategy:?}/{driver:?}/faults={faults}");
                let p = params(ReconfigMode::Partial, faults, 0x57A7);
                let exact = run_cell_scale(
                    &p,
                    strategy,
                    EventQueueBackend::Heap,
                    StatsBackend::Exact,
                    driver,
                    None,
                );
                let sketch = run_cell_scale(
                    &p,
                    strategy,
                    EventQueueBackend::Heap,
                    StatsBackend::Sketch,
                    driver,
                    None,
                );
                assert_eq!(exact.metrics, sketch.metrics, "{cell}: metrics");
                assert_eq!(
                    exact.report.to_xml(),
                    sketch.report.to_xml(),
                    "{cell}: XML report"
                );
                assert_eq!(
                    exact.report.to_json(),
                    sketch.report.to_json(),
                    "{cell}: JSON report"
                );
            }
        }
    }
    // Sketch-mode checkpoints must not depend on the queue backend.
    let p = params(ReconfigMode::Partial, true, 0x57A8);
    let heap_dir = fresh_dir("sk-heap");
    let cal_dir = fresh_dir("sk-cal");
    let _ = run_cell_scale(
        &p,
        AllocationStrategy::BestFit,
        EventQueueBackend::Heap,
        StatsBackend::Sketch,
        Driver::Event,
        Some(&heap_dir),
    );
    let _ = run_cell_scale(
        &p,
        AllocationStrategy::BestFit,
        EventQueueBackend::Calendar,
        StatsBackend::Sketch,
        Driver::Event,
        Some(&cal_dir),
    );
    let heap_cps = checkpoint_files(&heap_dir);
    let cal_cps = checkpoint_files(&cal_dir);
    assert!(!heap_cps.is_empty(), "sketch cells must checkpoint");
    assert_eq!(heap_cps, cal_cps, "sketch checkpoints diverged by queue");
    std::fs::remove_dir_all(&heap_dir).ok();
    std::fs::remove_dir_all(&cal_dir).ok();
}

/// A checkpoint taken under the calendar queue (sketch stats on) resumes
/// under either queue backend to the uninterrupted run's exact report —
/// the scale analogue of [`resume_mid_run_and_switch_backend`].
#[test]
fn resume_mid_run_and_switch_queue_backend() {
    let p = params(ReconfigMode::Partial, true, 0xCA15);
    let reference = run_cell_scale(
        &p,
        AllocationStrategy::BestFit,
        EventQueueBackend::Heap,
        StatsBackend::Sketch,
        Driver::Event,
        None,
    );
    for writer in [EventQueueBackend::Heap, EventQueueBackend::Calendar] {
        let dir = fresh_dir("qswitch");
        let _ = run_cell_scale(
            &p,
            AllocationStrategy::BestFit,
            writer,
            StatsBackend::Sketch,
            Driver::Event,
            Some(&dir),
        );
        let files = checkpoint_files(&dir);
        assert!(files.len() >= 2, "need a mid-run checkpoint to switch at");
        let mid = &files[files.len() / 2].0;
        for resumer in [EventQueueBackend::Heap, EventQueueBackend::Calendar] {
            let cp = read_checkpoint(&dir.join(mid)).unwrap();
            let resumed = Simulation::resume(
                cp,
                SyntheticSource::from_params(&p),
                CaseStudyScheduler::new(),
            )
            .unwrap()
            .with_event_queue_backend(resumer)
            .with_stats_backend(StatsBackend::Sketch)
            .run_with(&RunOptions::default())
            .unwrap();
            assert_eq!(
                resumed.report.to_xml(),
                reference.report.to_xml(),
                "wrote under {writer:?}, resumed {mid} under {resumer:?}"
            );
            assert_eq!(resumed.metrics, reference.metrics);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The deterministic parallel sweep pool stays byte-identical across
/// `--jobs` when points run under the scale backends (calendar queue +
/// quantile sketch).
#[test]
fn parallel_batch_invariant_across_jobs_with_scale_backends() {
    use dreamsim::sweep::{run_batch, SweepPoint};
    let points: Vec<SweepPoint> = (0..6)
        .map(|i| {
            let p = params(ReconfigMode::Partial, i % 2 == 0, 0xBA7C + i);
            SweepPoint::new(format!("scale{i}"), p)
                .with_queue(EventQueueBackend::Calendar)
                .with_stats(StatsBackend::Sketch)
        })
        .collect();
    let xmls = |jobs: usize| -> Vec<String> {
        run_batch(&points, jobs)
            .iter()
            .map(dreamsim::engine::Report::to_xml)
            .collect()
    };
    let serial = xmls(1);
    assert_eq!(serial, xmls(4), "scale-backend batch diverged at -j4");
}

/// The continuous auditor accepts the indexed backend after **every**
/// dispatched event — including fault, retry, and eviction paths — so
/// the incremental index hooks are validated at event granularity, not
/// just at run end.
#[test]
fn audit_every_event_passes_under_indexed_backend() {
    for mode in [ReconfigMode::Full, ReconfigMode::Partial] {
        let p = params(mode, true, 0xA0D1);
        let opts = RunOptions {
            audit: true,
            ..RunOptions::default()
        };
        let result = Simulation::new(
            p.clone(),
            SyntheticSource::from_params(&p),
            CaseStudyScheduler::new(),
        )
        .unwrap()
        .with_search_backend(SearchBackend::Indexed)
        .run_with(&opts)
        .unwrap();
        assert!(
            result.metrics.node_failures > 0,
            "{mode:?}: the audit run should actually exercise fault paths"
        );
    }
}
