//! Output-subsystem integration: the XML report is well formed, the
//! JSON report round-trips, and the CSV row matches its header.

use dreamsim::engine::{ReconfigMode, Report, SimParams};
use dreamsim::sweep::runner::{run_point, SweepPoint};

fn report() -> Report {
    let mut p = SimParams::paper(25, 200, ReconfigMode::Partial);
    p.seed = 5;
    run_point(&SweepPoint::new("report", p))
}

/// Minimal XML well-formedness check: tags balance like parentheses and
/// text content contains no raw markup characters.
fn assert_well_formed_xml(xml: &str) {
    let mut stack: Vec<String> = Vec::new();
    let mut rest = xml;
    // Skip the declaration.
    if let Some(pos) = rest.find("?>") {
        rest = &rest[pos + 2..];
    }
    while let Some(open) = rest.find('<') {
        let text = &rest[..open];
        assert!(
            !text.contains('&')
                || text.contains("&amp;")
                || text.contains("&lt;")
                || text.contains("&gt;")
                || text.contains("&quot;")
                || text.contains("&apos;"),
            "unescaped ampersand in text {text:?}"
        );
        let close = rest[open..].find('>').expect("tag closes") + open;
        let tag = &rest[open + 1..close];
        if let Some(name) = tag.strip_prefix('/') {
            let top = stack
                .pop()
                .unwrap_or_else(|| panic!("unbalanced </{name}>"));
            assert_eq!(top, name, "mismatched close tag");
        } else if !tag.ends_with('/') {
            stack.push(tag.split_whitespace().next().unwrap().to_string());
        }
        rest = &rest[close + 1..];
    }
    assert!(stack.is_empty(), "unclosed tags: {stack:?}");
}

#[test]
fn xml_report_is_well_formed() {
    let r = report();
    let xml = r.to_xml();
    assert_well_formed_xml(&xml);
    assert!(xml.contains("<dreamsim-report>"));
    assert!(xml.contains("<metrics>"));
    assert!(xml.contains(&format!(
        "<total-tasks-generated>{}</total-tasks-generated>",
        r.metrics.total_tasks_generated
    )));
}

#[test]
fn json_report_round_trips_exactly() {
    let r = report();
    let back: Report = serde_json::from_str(&r.to_json()).expect("valid JSON");
    assert_eq!(r, back);
}

#[test]
fn csv_row_matches_header_arity_and_mode() {
    let r = report();
    let header = Report::csv_header();
    let row = r.to_csv_row();
    assert_eq!(header.split(',').count(), row.split(',').count());
    assert!(row.starts_with("partial,25,200,"));
}

#[test]
fn figure_series_csv_shape() {
    use dreamsim::sweep::figures::{ExperimentGrid, Figure};
    let grid = ExperimentGrid::run(&[200], &[150, 300], 13, 2);
    let s = grid.figure(Figure::Fig9b);
    let csv = s.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines[0], "tasks,without_partial,with_partial");
    assert_eq!(lines.len(), 3);
    assert!(lines[1].starts_with("150,"));
    assert!(lines[2].starts_with("300,"));
}
