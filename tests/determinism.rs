//! Reproducibility guarantees: identical seeds give identical runs,
//! sweeps are independent of thread count, and the event-driven and
//! tick-stepped drivers are observationally equivalent.

use dreamsim::engine::{ReconfigMode, SimParams, Simulation};
use dreamsim::sched::CaseStudyScheduler;
use dreamsim::sweep::runner::{run_batch, run_point, SweepPoint};
use dreamsim::workload::SyntheticSource;

fn params(seed: u64) -> SimParams {
    let mut p = SimParams::paper(30, 300, ReconfigMode::Partial);
    p.seed = seed;
    p
}

#[test]
fn same_seed_same_everything() {
    let a = run_point(&SweepPoint::new("a", params(1)));
    let b = run_point(&SweepPoint::new("b", params(1)));
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.to_xml(), b.to_xml());
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn different_seed_different_schedule() {
    let a = run_point(&SweepPoint::new("a", params(1)));
    let b = run_point(&SweepPoint::new("b", params(2)));
    // Total simulation time depends on every arrival draw; collision is
    // implausible for different streams.
    assert_ne!(a.metrics.total_simulation_time, b.metrics.total_simulation_time);
}

#[test]
fn batch_results_independent_of_thread_count() {
    let points: Vec<SweepPoint> = (0..5)
        .map(|i| SweepPoint::new(format!("p{i}"), params(100 + i)))
        .collect();
    let t1 = run_batch(&points, 1);
    let t2 = run_batch(&points, 2);
    let t8 = run_batch(&points, 8);
    for i in 0..points.len() {
        assert_eq!(t1[i].metrics, t2[i].metrics, "point {i}: 1 vs 2 threads");
        assert_eq!(t1[i].metrics, t8[i].metrics, "point {i}: 1 vs 8 threads");
    }
}

#[test]
fn event_driven_equals_tick_stepped_across_modes_and_seeds() {
    for mode in [ReconfigMode::Full, ReconfigMode::Partial] {
        for seed in [3u64, 4, 5] {
            let mut p = SimParams::paper(15, 120, mode);
            p.seed = seed;
            let build = || {
                Simulation::new(
                    p.clone(),
                    SyntheticSource::from_params(&p),
                    CaseStudyScheduler::new(),
                )
                .unwrap()
            };
            let ev = build().run();
            let tick = build().run_tick_stepped();
            assert_eq!(ev.metrics, tick.metrics, "{mode} seed {seed}");
            assert_eq!(ev.tasks, tick.tasks, "{mode} seed {seed}");
        }
    }
}

#[test]
fn tasks_terminal_and_timestamps_consistent() {
    let result = {
        let p = params(77);
        Simulation::new(
            p.clone(),
            SyntheticSource::from_params(&p),
            CaseStudyScheduler::new(),
        )
        .unwrap()
        .run()
    };
    for t in &result.tasks {
        assert!(t.is_terminal(), "{:?}", t.id);
        if let (Some(start), Some(done)) = (t.start_time, t.completion_time) {
            assert!(start >= t.create_time, "{:?}: starts after creation", t.id);
            assert!(
                done >= start + t.required_time,
                "{:?}: runs at least its required time",
                t.id
            );
        }
    }
}
