//! Reproducibility guarantees: identical seeds give identical runs,
//! sweeps are independent of thread count, and the event-driven and
//! tick-stepped drivers are observationally equivalent.

use dreamsim::engine::{ReconfigMode, SimParams, Simulation};
use dreamsim::sched::CaseStudyScheduler;
use dreamsim::sweep::runner::{run_batch, run_point, SweepPoint};
use dreamsim::workload::SyntheticSource;

fn params(seed: u64) -> SimParams {
    let mut p = SimParams::paper(30, 300, ReconfigMode::Partial);
    p.seed = seed;
    p
}

#[test]
fn same_seed_same_everything() {
    let a = run_point(&SweepPoint::new("a", params(1)));
    let b = run_point(&SweepPoint::new("b", params(1)));
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.to_xml(), b.to_xml());
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn different_seed_different_schedule() {
    let a = run_point(&SweepPoint::new("a", params(1)));
    let b = run_point(&SweepPoint::new("b", params(2)));
    // Total simulation time depends on every arrival draw; collision is
    // implausible for different streams.
    assert_ne!(
        a.metrics.total_simulation_time,
        b.metrics.total_simulation_time
    );
}

#[test]
fn batch_results_independent_of_thread_count() {
    let points: Vec<SweepPoint> = (0..5)
        .map(|i| SweepPoint::new(format!("p{i}"), params(100 + i)))
        .collect();
    let t1 = run_batch(&points, 1);
    let t2 = run_batch(&points, 2);
    let t8 = run_batch(&points, 8);
    for i in 0..points.len() {
        assert_eq!(t1[i].metrics, t2[i].metrics, "point {i}: 1 vs 2 threads");
        assert_eq!(t1[i].metrics, t8[i].metrics, "point {i}: 1 vs 8 threads");
    }
}

#[test]
fn event_driven_equals_tick_stepped_across_modes_and_seeds() {
    for mode in [ReconfigMode::Full, ReconfigMode::Partial] {
        for seed in [3u64, 4, 5] {
            let mut p = SimParams::paper(15, 120, mode);
            p.seed = seed;
            let build = || {
                Simulation::new(
                    p.clone(),
                    SyntheticSource::from_params(&p),
                    CaseStudyScheduler::new(),
                )
                .unwrap()
            };
            let ev = build().run();
            let tick = build().run_tick_stepped();
            assert_eq!(ev.metrics, tick.metrics, "{mode} seed {seed}");
            assert_eq!(ev.tasks, tick.tasks, "{mode} seed {seed}");
        }
    }
}

fn fault_params(seed: u64) -> SimParams {
    let mut p = params(seed);
    p.faults.node_mttf = Some(50_000);
    p.faults.node_mttr = 5_000;
    p.faults.reconfig_fail_prob = 0.2;
    p.faults.task_fail_prob = 0.05;
    p.faults.suspension_deadline = Some(200_000);
    p
}

#[test]
fn same_seed_same_fault_injection() {
    let build = |p: SimParams| {
        Simulation::new(
            p.clone(),
            SyntheticSource::from_params(&p),
            CaseStudyScheduler::new(),
        )
        .unwrap()
        .run()
    };
    let a = build(fault_params(11));
    let b = build(fault_params(11));
    assert_eq!(a.metrics, b.metrics);
    assert_eq!(a.tasks, b.tasks);
    // The run actually exercised the fault machinery.
    assert!(a.metrics.node_failures > 0, "failures should fire");
    assert!(a.metrics.node_downtime > 0, "downtime should accrue");
    assert!(
        a.metrics.reconfig_failures > 0,
        "bitstream loads should fail"
    );
    assert_eq!(a.metrics.node_failures, b.metrics.node_failures);
    assert_eq!(a.metrics.reconfig_failures, b.metrics.reconfig_failures);
    assert_eq!(a.metrics.resubmissions, b.metrics.resubmissions);
    assert_eq!(a.metrics.tasks_lost, b.metrics.tasks_lost);
    assert_eq!(a.metrics.node_downtime, b.metrics.node_downtime);
}

#[test]
fn disabled_fault_params_do_not_perturb_the_run() {
    // `FaultParams::default()` is all-off; constructing the fault model
    // must not consume randomness or alter any metric relative to the
    // same seed. (The struct literal spells the defaults out so a future
    // change to the defaults would be caught here.)
    let mut explicit = params(42);
    explicit.faults = dreamsim::engine::FaultParams {
        node_mttf: None,
        node_mttr: 1_000,
        reconfig_fail_prob: 0.0,
        task_fail_prob: 0.0,
        max_retries: 3,
        retry_backoff_base: 8,
        retry_backoff_cap: 512,
        resubmit: true,
        suspension_deadline: None,
    };
    let build = |p: SimParams| {
        Simulation::new(
            p.clone(),
            SyntheticSource::from_params(&p),
            CaseStudyScheduler::new(),
        )
        .unwrap()
        .run()
    };
    let base = build(params(42));
    let with_disabled = build(explicit);
    assert_eq!(base.metrics, with_disabled.metrics);
    assert_eq!(base.tasks, with_disabled.tasks);
    assert_eq!(base.metrics.node_failures, 0);
    assert_eq!(base.metrics.tasks_lost, 0);
    assert_eq!(base.metrics.node_downtime, 0);
}

#[test]
fn fault_runs_agree_across_drivers() {
    let mut p = SimParams::paper(15, 120, ReconfigMode::Partial);
    p.seed = 9;
    p.faults.node_mttf = Some(20_000);
    p.faults.node_mttr = 2_000;
    p.faults.reconfig_fail_prob = 0.15;
    p.faults.task_fail_prob = 0.05;
    let build = || {
        Simulation::new(
            p.clone(),
            SyntheticSource::from_params(&p),
            CaseStudyScheduler::new(),
        )
        .unwrap()
    };
    let ev = build().run();
    let tick = build().run_tick_stepped();
    assert_eq!(ev.metrics, tick.metrics);
    assert_eq!(ev.tasks, tick.tasks);
    assert!(
        ev.metrics.node_failures > 0,
        "faults should fire in both drivers"
    );
}

#[test]
fn fault_run_completes_every_task_terminally() {
    let p = fault_params(123);
    let result = Simulation::new(
        p.clone(),
        SyntheticSource::from_params(&p),
        CaseStudyScheduler::new(),
    )
    .unwrap()
    .run();
    let m = &result.metrics;
    assert_eq!(
        m.total_tasks_completed + m.total_discarded_tasks,
        m.total_tasks_generated
    );
    for t in &result.tasks {
        assert!(t.is_terminal(), "{:?} not terminal", t.id);
    }
}

#[test]
fn tasks_terminal_and_timestamps_consistent() {
    let result = {
        let p = params(77);
        Simulation::new(
            p.clone(),
            SyntheticSource::from_params(&p),
            CaseStudyScheduler::new(),
        )
        .unwrap()
        .run()
    };
    for t in &result.tasks {
        assert!(t.is_terminal(), "{:?}", t.id);
        if let (Some(start), Some(done)) = (t.start_time, t.completion_time) {
            assert!(start >= t.create_time, "{:?}: starts after creation", t.id);
            assert!(
                done >= start + t.required_time,
                "{:?}: runs at least its required time",
                t.id
            );
        }
    }
}
