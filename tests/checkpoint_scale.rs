//! Checkpoint-size regression for the scale backends (DESIGN.md §16).
//!
//! The seed checkpoint format carried every waiting-time sample
//! (`wait_samples`), an O(task count) payload that dominates snapshots
//! of large runs. Under `StatsBackend::Sketch` the samples are folded
//! into a fixed-structure quantile sketch, so the statistics portion of
//! a checkpoint must stay **flat** as the task ladder climbs.

use dreamsim::engine::{ReconfigMode, RunOptions, SimParams, Simulation, StatsBackend};
use dreamsim::sched::CaseStudyScheduler;
use dreamsim::workload::SyntheticSource;
use std::path::{Path, PathBuf};

fn params(tasks: usize, seed: u64) -> SimParams {
    let mut p = SimParams::paper(20, tasks, ReconfigMode::Partial);
    p.seed = seed;
    // Short tasks keep the big rungs fast.
    p.task_time = dreamsim::engine::params::Range::new(10, 2_000);
    p
}

fn fresh_dir(tag: &str) -> PathBuf {
    // lint: allow(r2) -- scratch directory for test artifacts, never simulator state
    let dir = std::env::temp_dir().join(format!("dreamsim-cpscale-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Run a synthetic workload with periodic checkpoints and return the
/// bytes of the **last** checkpoint written — the one with the most
/// waiting-time samples accumulated.
fn last_checkpoint(p: &SimParams, stats: StatsBackend, dir: &Path) -> Vec<u8> {
    let opts = RunOptions {
        checkpoint_every: Some(100_000),
        checkpoint_dir: Some(dir.to_path_buf()),
        ..RunOptions::default()
    };
    Simulation::new(
        p.clone(),
        SyntheticSource::from_params(p),
        CaseStudyScheduler::new(),
    )
    .unwrap()
    .with_stats_backend(stats)
    .run_with(&opts)
    .unwrap();
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    let last = files.last().expect("run long enough to checkpoint");
    std::fs::read(last).unwrap()
}

/// Serialized size of one named field of the checkpoint's JSON payload
/// (the bytes after the `DREAMSIM-CHECKPOINT` header line).
fn field_size(checkpoint: &[u8], field: &str) -> usize {
    let text = std::str::from_utf8(checkpoint).unwrap();
    let payload = text.split_once('\n').expect("header line").1;
    let v: serde_json::Value = serde_json::from_str(payload).expect("valid JSON payload");
    serde_json::to_string(&v[field]).unwrap().len()
}

/// The compact columnar task table (checkpoint format v2, DESIGN.md
/// §18) must hold a pinned byte budget as the ladder climbs 6k → 24k
/// tasks, and must beat the legacy JSON array form of the *same
/// snapshot* by at least 4×. The budget is generous (40 bytes per task,
/// base64 included; observed ≈20) so it only trips on a real encoding
/// regression, not on workload drift.
#[test]
fn compact_task_table_meets_byte_budget_and_beats_legacy() {
    use dreamsim::engine::{read_checkpoint, write_checkpoint_compat_v1};
    let rungs = [6_000usize, 24_000];
    let mut compact_sizes = Vec::new();
    for (i, &tasks) in rungs.iter().enumerate() {
        let p = params(tasks, 0xBEEF + i as u64);
        let dir = fresh_dir(&format!("ct{tasks}"));
        let cp_bytes = last_checkpoint(&p, StatsBackend::Sketch, &dir);
        assert!(
            cp_bytes.starts_with(b"DREAMSIM-CHECKPOINT 2 "),
            "n={tasks}: current checkpoints must carry the v2 header"
        );
        let compact = field_size(&cp_bytes, "tasks");
        assert!(
            compact <= tasks * 40 + 256,
            "n={tasks}: compact task table blew its budget: {compact} bytes \
             ({} per task, budget 40)",
            compact / tasks
        );
        // Re-emit the same snapshot in the legacy v1 layout and compare.
        let copy = dir.join("copy.dsc");
        std::fs::write(&copy, &cp_bytes).unwrap();
        let cp = read_checkpoint(&copy).unwrap();
        let legacy_path = dir.join("legacy.dsc");
        write_checkpoint_compat_v1(&legacy_path, &cp).unwrap();
        let legacy = field_size(&std::fs::read(&legacy_path).unwrap(), "tasks");
        assert!(
            legacy >= compact * 4,
            "n={tasks}: compact form ({compact} bytes) must be >= 4x smaller \
             than the legacy array ({legacy} bytes)"
        );
        // And the legacy file must still load — it is the v1 compat
        // surface this build promises to keep reading.
        let reloaded = read_checkpoint(&legacy_path).unwrap();
        assert_eq!(reloaded.clock(), cp.clock());
        compact_sizes.push(compact);
        std::fs::remove_dir_all(&dir).ok();
    }
    // Scaling check: 4x the tasks may cost at most ~8x the bytes. The
    // slack is deliberate — the snapshots' task-state mix differs per
    // rung (a larger run has proportionally more in-flight tasks at its
    // last checkpoint, and those carry more populated columns) — so
    // only a genuinely superlinear blowup fails.
    assert!(
        compact_sizes[1] <= compact_sizes[0] * 8,
        "compact task table grew superlinearly: {compact_sizes:?}"
    );
}

/// Climbing the task ladder 6k → 24k must leave the sketch-mode
/// statistics payload flat (both rungs sit past the sketch's collapse
/// threshold, so both serialize the fixed bucket structure), while the
/// exact-mode payload demonstrably grows with the ladder.
#[test]
fn sketch_mode_checkpoint_stats_payload_is_flat_across_the_ladder() {
    let rungs = [6_000usize, 24_000];
    let mut sketch_stats = Vec::new();
    let mut exact_waits = Vec::new();
    let mut file_sizes = Vec::new();
    for (i, &tasks) in rungs.iter().enumerate() {
        let p = params(tasks, 0xC0DE + i as u64);
        let sk_dir = fresh_dir(&format!("sk{tasks}"));
        let ex_dir = fresh_dir(&format!("ex{tasks}"));
        let sk = last_checkpoint(&p, StatsBackend::Sketch, &sk_dir);
        let ex = last_checkpoint(&p, StatsBackend::Exact, &ex_dir);
        // Sketch mode never carries raw samples.
        assert_eq!(
            field_size(&sk, "wait_samples"),
            "[]".len(),
            "n={tasks}: sketch-mode checkpoint still carries wait samples"
        );
        sketch_stats.push(field_size(&sk, "stats"));
        exact_waits.push(field_size(&ex, "wait_samples"));
        file_sizes.push((sk.len(), ex.len()));
        std::fs::remove_dir_all(&sk_dir).ok();
        std::fs::remove_dir_all(&ex_dir).ok();
    }
    // End-to-end, at the top rung (where the O(n) sample vector has
    // outgrown the fixed sketch): the sketch checkpoint file is
    // strictly smaller than the exact one.
    let (sk_top, ex_top) = file_sizes[1];
    assert!(
        sk_top < ex_top,
        "top rung: sketch file {sk_top} >= exact file {ex_top}"
    );
    let (small, large) = (sketch_stats[0], sketch_stats[1]);
    assert!(
        large <= small * 2 && large < 80_000,
        "sketch stats payload not flat: {small} bytes at {}k tasks, {large} at {}k",
        rungs[0] / 1000,
        rungs[1] / 1000
    );
    assert!(
        exact_waits[1] > exact_waits[0] * 2,
        "expected exact-mode wait samples to grow with the ladder: {exact_waits:?}"
    );
    // The removed hazard, head-on: the exact payload at the top rung
    // dwarfs the entire sketch statistics block.
    assert!(
        exact_waits[1] > sketch_stats[1] * 4,
        "exact wait samples {} should dwarf sketch stats {}",
        exact_waits[1],
        sketch_stats[1]
    );
}
