//! Workload-path integration: trace record/replay through full
//! simulations, and DAG dependency semantics end to end.

use dreamsim::engine::sim::{SourceYield, TaskSource};
use dreamsim::engine::{ReconfigMode, SimParams, Simulation};
use dreamsim::model::{ConfigId, PreferredConfig, TaskState};
use dreamsim::rng::Rng;
use dreamsim::sched::CaseStudyScheduler;
use dreamsim::workload::{trace, DagSource, DagSpec, DagTask, SyntheticSource, TraceSource};

fn params(nodes: usize, tasks: usize) -> SimParams {
    let mut p = SimParams::paper(nodes, tasks, ReconfigMode::Partial);
    p.seed = 17;
    p
}

#[test]
fn synthetic_record_then_replay_gives_identical_metrics() {
    let p = params(30, 250);
    // Draw the workload up front.
    let mut synth = SyntheticSource::from_params(&p);
    let mut rng = Rng::seed_from(555);
    let mut specs = Vec::new();
    for _ in 0..p.total_tasks {
        match synth.next_task(0, &mut rng) {
            SourceYield::Task(s) => specs.push(s),
            _ => break,
        }
    }
    let text = trace::write_trace(&specs);
    let run = |text: &str| {
        Simulation::new(
            p.clone(),
            TraceSource::from_text(text).unwrap(),
            CaseStudyScheduler::new(),
        )
        .unwrap()
        .run()
        .metrics
    };
    let a = run(&text);
    let b = run(&text);
    assert_eq!(a, b);
    assert_eq!(a.total_tasks_generated as usize, specs.len());
}

#[test]
fn short_trace_ends_run_early() {
    let mut p = params(10, 1_000); // budget larger than the trace
    p.seed = 3;
    let text = "1 100 c0 0\n2 200 c1 0\n3 300 p500 0\n";
    let result = Simulation::new(
        p,
        TraceSource::from_text(text).unwrap(),
        CaseStudyScheduler::new(),
    )
    .unwrap()
    .run();
    assert_eq!(result.metrics.total_tasks_generated, 3);
    assert_eq!(result.tasks.len(), 3);
}

#[test]
fn dag_chain_respects_dependencies_end_to_end() {
    let n = 6;
    let spec = DagSpec::chain(
        (0..n)
            .map(|_| DagTask::new(500, PreferredConfig::Known(ConfigId(0))))
            .collect(),
    );
    let p = params(8, n);
    let result = Simulation::new(p, DagSource::new(spec).unwrap(), CaseStudyScheduler::new())
        .unwrap()
        .run();
    assert_eq!(result.metrics.total_tasks_completed, n as u64);
    // Strict pipeline: task k+1 must not start before task k completes.
    for w in result.tasks.windows(2) {
        let done = w[0].completion_time.expect("completed");
        let next_start = w[1].start_time.expect("started");
        assert!(
            next_start >= done,
            "task {:?} started at {next_start} before {:?} finished at {done}",
            w[1].id,
            w[0].id
        );
    }
}

#[test]
fn dag_fork_join_sink_starts_after_all_workers() {
    let mk = || DagTask::new(400, PreferredConfig::Known(ConfigId(1)));
    let spec = DagSpec::fork_join(mk(), vec![mk(), mk(), mk()], mk());
    let p = params(8, 5);
    let result = Simulation::new(p, DagSource::new(spec).unwrap(), CaseStudyScheduler::new())
        .unwrap()
        .run();
    assert_eq!(result.metrics.total_tasks_completed, 5);
    let sink = &result.tasks[4];
    let sink_start = sink.start_time.expect("sink ran");
    for worker in &result.tasks[1..4] {
        let done = worker.completion_time.expect("worker completed");
        assert!(sink_start >= done, "sink started before a worker finished");
    }
}

#[test]
fn dag_tasks_all_terminate_even_with_phantom_preferences() {
    // Phantom preferences route through the closest-match path inside a
    // dependency-gated workload.
    let mut spec = DagSpec::new();
    let a = spec.add_task(DagTask::new(100, PreferredConfig::Phantom { area: 300 }));
    let b = spec.add_task(DagTask::new(100, PreferredConfig::Phantom { area: 1_500 }));
    spec.add_edge(a, b).unwrap();
    let p = params(5, 2);
    let result = Simulation::new(p, DagSource::new(spec).unwrap(), CaseStudyScheduler::new())
        .unwrap()
        .run();
    for t in &result.tasks {
        assert!(
            matches!(t.state, TaskState::Completed | TaskState::Discarded),
            "{:?} in {:?}",
            t.id,
            t.state
        );
    }
}

#[test]
fn trace_parse_failures_surface_cleanly() {
    assert!(TraceSource::from_text("not a trace\n").is_err());
    assert!(TraceSource::from_text("1 2 c0 0\n1 2\n").is_err());
    let empty = TraceSource::from_text("# only comments\n").unwrap();
    assert!(empty.is_empty());
}
