//! Cross-crate property tests: arbitrary small parameter sets and
//! workloads must never violate the simulator's global invariants.

use dreamsim::engine::{
    read_checkpoint, ReconfigMode, RunOptions, SearchBackend, SimParams, Simulation,
};
use dreamsim::model::PreferredConfig;
use dreamsim::sched::CaseStudyScheduler;
use dreamsim::sweep::runner::{run_point, SweepPoint};
use dreamsim::workload::SyntheticSource;
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

fn arb_params() -> impl Strategy<Value = SimParams> {
    (
        2usize..25,  // nodes
        1usize..12,  // configs
        1usize..120, // tasks
        1u64..30,    // max interval
        prop_oneof![Just(ReconfigMode::Full), Just(ReconfigMode::Partial)],
        any::<u64>(),    // seed
        0.0f64..1.0,     // phantom fraction
        prop::bool::ANY, // suspension enabled
    )
        .prop_map(
            |(nodes, configs, tasks, interval, mode, seed, phantom, susp)| {
                let mut p = SimParams::paper(nodes, tasks, mode);
                p.total_configs = configs;
                p.next_task_max_interval = interval;
                p.seed = seed;
                p.closest_match_fraction = phantom;
                p.suspension_enabled = susp;
                // Short tasks keep the runs fast.
                p.task_time = dreamsim::engine::params::Range::new(10, 2_000);
                p
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every run terminates with a coherent ledger, whatever the
    /// parameters.
    #[test]
    fn ledger_coherent_for_arbitrary_params(p in arb_params()) {
        let m = run_point(&SweepPoint::new("prop", p.clone())).metrics;
        prop_assert_eq!(m.total_tasks_generated as usize, p.total_tasks.min(m.total_tasks_generated as usize));
        prop_assert_eq!(m.total_tasks_completed + m.total_discarded_tasks, m.total_tasks_generated);
        prop_assert_eq!(m.total_scheduler_workload, m.scheduler_search_length + m.housekeeping_steps);
        prop_assert!(m.total_used_nodes <= p.total_nodes as u64);
        prop_assert!(!m.avg_waiting_time_per_task.is_nan());
        prop_assert!(!m.avg_wasted_area_per_task.is_nan());
        if p.mode == ReconfigMode::Full {
            prop_assert_eq!(m.phases.partial_configuration, 0);
        }
        if !p.suspension_enabled {
            prop_assert_eq!(m.total_suspensions, 0);
        }
    }

    /// Event-driven and tick-stepped drivers agree on arbitrary
    /// scenarios (the strongest cross-check of the time model).
    #[test]
    fn drivers_equivalent_for_arbitrary_params(mut p in arb_params()) {
        p.total_tasks = p.total_tasks.min(40); // tick driver is O(ticks)
        p.task_time = dreamsim::engine::params::Range::new(5, 300);
        let build = || Simulation::new(
            p.clone(),
            SyntheticSource::from_params(&p),
            CaseStudyScheduler::new(),
        ).unwrap();
        let ev = build().run();
        let tick = build().run_tick_stepped();
        prop_assert_eq!(ev.metrics, tick.metrics);
        prop_assert_eq!(ev.tasks, tick.tasks);
    }

    /// Task timestamps are always ordered: create ≤ start, and
    /// completion covers the full required time.
    #[test]
    fn task_timestamps_ordered(p in arb_params()) {
        let result = Simulation::new(
            p.clone(),
            SyntheticSource::from_params(&p),
            CaseStudyScheduler::new(),
        ).unwrap().run();
        for t in &result.tasks {
            prop_assert!(t.is_terminal());
            if let Some(s) = t.start_time {
                prop_assert!(s >= t.create_time);
            }
            if let (Some(s), Some(c)) = (t.start_time, t.completion_time) {
                prop_assert!(c >= s + t.required_time);
            }
            // A completed task must have been assigned a configuration
            // compatible with its resolution.
            if t.completion_time.is_some() {
                prop_assert!(t.assigned_config.is_some());
                if let (Some(a), Some(r)) = (t.assigned_config, t.resolved_config) {
                    prop_assert_eq!(a, r);
                }
            }
        }
    }

    /// Snapshots of arbitrary mid-run states survive a full
    /// serialize → disk → restore round trip: the restored state passes
    /// the invariant auditor, and continuing from it reproduces the
    /// uninterrupted run's report byte for byte.
    #[test]
    fn checkpoints_restore_to_audited_bit_identical_states(
        mut p in arb_params(),
        every in 50u64..2_000,
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        p.total_tasks = p.total_tasks.min(40);
        // Faults exercise the RNG-heavy paths the checkpoint must capture.
        p.faults.node_mttf = Some(2_000);
        p.faults.reconfig_fail_prob = 0.1;
        // lint: allow(r2) -- scratch directory for test artifacts, never simulator state
        let dir = std::env::temp_dir().join(format!(
            "dreamsim-prop-cp-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let build = || Simulation::new(
            p.clone(),
            SyntheticSource::from_params(&p),
            CaseStudyScheduler::new(),
        ).unwrap();
        let opts = RunOptions {
            checkpoint_every: Some(every),
            checkpoint_dir: Some(dir.clone()),
            audit: true,
            ..RunOptions::default()
        };
        let reference = build().run_with(&opts).unwrap();
        let mut files: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        files.sort();
        // Resuming re-runs the remainder of the simulation, so sample a
        // handful of snapshots instead of replaying from every one.
        let step = (files.len() / 4).max(1);
        for file in files.iter().step_by(step) {
            let cp = read_checkpoint(file).unwrap();
            let sim = Simulation::resume(
                cp,
                SyntheticSource::from_params(&p),
                CaseStudyScheduler::new(),
            ).unwrap();
            // `resume` audits internally; re-assert explicitly so a
            // future relaxation of that behaviour fails loudly here.
            prop_assert!(sim.audit().is_ok());
            let resumed = sim.run_with(&RunOptions::default()).unwrap();
            prop_assert_eq!(&resumed.metrics, &reference.metrics);
            prop_assert_eq!(resumed.report.to_xml(), reference.report.to_xml());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Arbitrary workloads behave identically under the indexed search
    /// backend: the per-event auditor (which cross-checks the live index
    /// against a from-scratch rebuild) accepts every state, and the
    /// final report matches the linear backend byte for byte.
    #[test]
    fn indexed_backend_audits_clean_and_matches_linear(mut p in arb_params()) {
        p.total_tasks = p.total_tasks.min(60);
        // Faults exercise the purge/repair index hooks.
        p.faults.node_mttf = Some(2_000);
        p.faults.reconfig_fail_prob = 0.1;
        let run = |backend: SearchBackend| {
            Simulation::new(
                p.clone(),
                SyntheticSource::from_params(&p),
                CaseStudyScheduler::new(),
            )
            .unwrap()
            .with_search_backend(backend)
            .run_with(&RunOptions { audit: true, ..RunOptions::default() })
            .unwrap()
        };
        let lin = run(SearchBackend::Linear);
        let idx = run(SearchBackend::Indexed);
        prop_assert_eq!(&lin.metrics, &idx.metrics);
        prop_assert_eq!(lin.report.to_xml(), idx.report.to_xml());
        prop_assert_eq!(lin.tasks, idx.tasks);
    }

    /// Phantom-preferring tasks are only ever assigned a configuration
    /// strictly larger than their preferred area (the closest-match
    /// criterion).
    #[test]
    fn closest_match_assignments_dominate_preferred_area(mut p in arb_params()) {
        p.closest_match_fraction = 1.0; // all phantom
        let result = Simulation::new(
            p.clone(),
            SyntheticSource::from_params(&p),
            CaseStudyScheduler::new(),
        ).unwrap().run();
        // Reconstruct config areas from a fresh simulation's resources.
        let probe = Simulation::new(
            p.clone(),
            SyntheticSource::from_params(&p),
            CaseStudyScheduler::new(),
        ).unwrap();
        let areas: Vec<u64> = probe.resources().configs().iter().map(|c| c.req_area).collect();
        for t in &result.tasks {
            if let (PreferredConfig::Phantom { area }, Some(assigned)) =
                (t.preferred, t.assigned_config)
            {
                prop_assert!(
                    areas[assigned.index()] > area,
                    "assigned area {} not strictly above preferred {area}",
                    areas[assigned.index()]
                );
            }
        }
    }
}
