//! `#[derive(Serialize, Deserialize)]` for the vendored `serde` shim.
//!
//! crates.io is unreachable in this build environment, so instead of
//! `syn`/`quote` this crate walks the raw [`proc_macro::TokenStream`] of
//! the deriving item and emits impls of the shim's value-tree traits as
//! formatted source text. Supported shapes: non-generic structs (named,
//! tuple, unit) and enums (unit, newtype, tuple, struct variants) with
//! optional `#[serde(skip)]` / `#[serde(default)]` field attributes —
//! exactly the surface the DReAMSim workspace uses.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

/// One field of a named-field struct or struct variant.
struct Field {
    name: String,
    /// `#[serde(skip)]`: omitted on serialize, defaulted on deserialize.
    skip: bool,
    /// `#[serde(default)]`: defaulted when missing on deserialize.
    default: bool,
}

/// Shape of a struct body or enum-variant payload.
enum Body {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    body: Body,
}

enum Item {
    Struct {
        name: String,
        body: Body,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn ident_of(tok: &TokenTree) -> Option<String> {
    match tok {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

fn is_punct(tok: &TokenTree, ch: char) -> bool {
    matches!(tok, TokenTree::Punct(p) if p.as_char() == ch)
}

/// Inspect one `#[...]` attribute body; record `serde(...)` options.
fn scan_attr(attr: &TokenTree, skip: &mut bool, default: &mut bool) {
    let TokenTree::Group(g) = attr else { return };
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.first().and_then(ident_of).as_deref() != Some("serde") {
        return;
    }
    let Some(TokenTree::Group(inner)) = toks.get(1) else {
        return;
    };
    for opt in inner.stream() {
        match ident_of(&opt).as_deref() {
            Some("skip") => *skip = true,
            Some("default") => *default = true,
            Some(other) => panic!("serde shim: unsupported attribute `serde({other})`"),
            None => {} // separating commas
        }
    }
}

/// Parse the fields of a `{ ... }` body.
fn parse_named(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (mut skip, mut default) = (false, false);
        while is_punct(&toks[i], '#') {
            scan_attr(&toks[i + 1], &mut skip, &mut default);
            i += 2;
        }
        if ident_of(&toks[i]).as_deref() == Some("pub") {
            i += 1;
            if matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
                i += 1;
            }
        }
        let name = ident_of(&toks[i]).expect("field name");
        i += 2; // name, ':'
                // Skip the type: everything up to a comma outside angle brackets.
        let mut depth = 0i32;
        while i < toks.len() {
            if is_punct(&toks[i], '<') {
                depth += 1;
            } else if is_punct(&toks[i], '>') {
                depth -= 1;
            } else if is_punct(&toks[i], ',') && depth == 0 {
                i += 1;
                break;
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

/// Count the fields of a `( ... )` tuple body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut any = false;
    for tok in stream {
        if is_punct(&tok, '<') {
            depth += 1;
        } else if is_punct(&tok, '>') {
            depth -= 1;
        } else if is_punct(&tok, ',') && depth == 0 {
            count += 1;
            any = false;
            continue;
        }
        any = true;
    }
    count + usize::from(any)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while is_punct(&toks[i], '#') {
            i += 2; // variant attributes (docs, #[default]) carry no serde options
        }
        let name = ident_of(&toks[i]).expect("variant name");
        i += 1;
        let body = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Body::Named(parse_named(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Body::Unit,
        };
        if i < toks.len() {
            assert!(
                is_punct(&toks[i], ','),
                "serde shim: unsupported token after enum variant {name}"
            );
            i += 1;
        }
        variants.push(Variant { name, body });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    loop {
        if is_punct(&toks[i], '#') {
            i += 2;
        } else if ident_of(&toks[i]).as_deref() == Some("pub") {
            i += 1;
            if matches!(&toks[i], TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis) {
                i += 1;
            }
        } else {
            break;
        }
    }
    let kind = ident_of(&toks[i]).expect("struct or enum keyword");
    let name = ident_of(&toks[i + 1]).expect("item name");
    i += 2;
    if toks.get(i).is_some_and(|t| is_punct(t, '<')) {
        panic!("serde shim: generic type {name} is not supported");
    }
    match kind.as_str() {
        "struct" => {
            let body = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Body::Unit,
            };
            Item::Struct { name, body }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = toks.get(i) else {
                panic!("serde shim: malformed enum {name}");
            };
            Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            }
        }
        other => panic!("serde shim: cannot derive for `{other}` items"),
    }
}

/// Serialize expression for a named-field body, given an accessor prefix
/// (`&self.` for structs, `` for bound variant fields).
fn named_to_value(fields: &[Field], accessor: impl Fn(&str) -> String) -> String {
    let mut out = String::from("{ let mut __fields: Vec<(String, ::serde::Value)> = Vec::new(); ");
    for f in fields.iter().filter(|f| !f.skip) {
        let _ = write!(
            out,
            "__fields.push((\"{name}\".to_string(), ::serde::Serialize::to_value({acc})));",
            name = f.name,
            acc = accessor(&f.name)
        );
    }
    out.push_str("::serde::Value::Object(__fields) }");
    out
}

/// Deserialize expression rebuilding a named-field body from `__obj`.
fn named_from_obj(type_path: &str, ctx: &str, fields: &[Field]) -> String {
    let mut out = format!("{type_path} {{ ");
    for f in fields {
        if f.skip {
            let _ = write!(out, "{}: ::std::default::Default::default(), ", f.name);
        } else if f.default {
            let _ = write!(
                out,
                "{name}: match ::serde::__find(__obj, \"{name}\") {{ \
                   Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                   None => ::std::default::Default::default(), }}, ",
                name = f.name
            );
        } else {
            let _ = write!(
                out,
                "{name}: ::serde::Deserialize::from_value(::serde::__find(__obj, \"{name}\")\
                   .ok_or_else(|| ::serde::Error::custom(\"{ctx}: missing field {name}\"))?)?, ",
                name = f.name
            );
        }
    }
    out.push('}');
    out
}

fn gen_serialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { body, .. } => match body {
            Body::Unit => "::serde::Value::Null".to_string(),
            Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Body::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
            Body::Named(fields) => named_to_value(fields, |f| format!("&self.{f}")),
        },
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let arm = match &v.body {
                    Body::Unit => {
                        format!("{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),")
                    }
                    Body::Tuple(1) => format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_value(__f0))]),"
                    ),
                    Body::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Array(vec![{items}]))]),",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                    Body::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let inner = named_to_value(fields, |f| f.to_string());
                        format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), {inner})]),",
                            binds = binds.join(", ")
                        )
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{ {arms} }}")
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    let body = match item {
        Item::Struct { body, .. } => match body {
            Body::Unit => format!("let _ = __v; Ok({name})"),
            Body::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(__v)?))"),
            Body::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                    .collect();
                format!(
                    "let __arr = __v.as_array().ok_or_else(|| \
                       ::serde::Error::custom(\"{name}: expected array\"))?; \
                     if __arr.len() != {n} {{ return Err(::serde::Error::custom(\
                       \"{name}: expected {n} elements\")); }} \
                     Ok({name}({items}))",
                    items = items.join(", ")
                )
            }
            Body::Named(fields) => format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                   ::serde::Error::custom(\"{name}: expected object\"))?; \
                 Ok({built})",
                built = named_from_obj(name, name, fields)
            ),
        },
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    Body::Unit => {
                        let _ = write!(
                            unit_arms,
                            "if __s == \"{vn}\" {{ return Ok({name}::{vn}); }} "
                        );
                    }
                    Body::Tuple(1) => {
                        let _ = write!(
                            data_arms,
                            "if __k == \"{vn}\" {{ return Ok({name}::{vn}(\
                               ::serde::Deserialize::from_value(__inner)?)); }} "
                        );
                    }
                    Body::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        let _ = write!(
                            data_arms,
                            "if __k == \"{vn}\" {{ \
                               let __arr = __inner.as_array().ok_or_else(|| \
                                 ::serde::Error::custom(\"{name}::{vn}: expected array\"))?; \
                               if __arr.len() != {n} {{ return Err(::serde::Error::custom(\
                                 \"{name}::{vn}: expected {n} elements\")); }} \
                               return Ok({name}::{vn}({items})); }} ",
                            items = items.join(", ")
                        );
                    }
                    Body::Named(fields) => {
                        let built = named_from_obj(
                            &format!("{name}::{vn}"),
                            &format!("{name}::{vn}"),
                            fields,
                        );
                        let _ = write!(
                            data_arms,
                            "if __k == \"{vn}\" {{ \
                               let __obj = __inner.as_object().ok_or_else(|| \
                                 ::serde::Error::custom(\"{name}::{vn}: expected object\"))?; \
                               return Ok({built}); }} "
                        );
                    }
                }
            }
            format!(
                "if let Some(__s) = __v.as_str() {{ {unit_arms} \
                   return Err(::serde::Error::custom(format!(\"{name}: unknown variant {{__s}}\"))); }} \
                 if let Some(__pairs) = __v.as_object() {{ \
                   if __pairs.len() == 1 {{ \
                     let (__k, __inner) = (&__pairs[0].0, &__pairs[0].1); \
                     let _ = __inner; \
                     {data_arms} \
                     return Err(::serde::Error::custom(format!(\"{name}: unknown variant {{__k}}\"))); }} }} \
                 Err(::serde::Error::custom(\"{name}: expected variant\"))"
            )
        }
    };
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ \
             {body} }} }}"
    )
}
