//! Offline stand-in for the `proptest` crate.
//!
//! crates.io is unreachable in this build environment, so this shim
//! reimplements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait with `prop_map`/`boxed`, integer/float
//! range strategies, tuple composition, `Just`, `any::<T>()`,
//! `prop::collection::vec`, `prop::bool::ANY`, weighted
//! [`prop_oneof!`], and the [`proptest!`] macro family
//! (`prop_assert*`, `prop_assume!`).
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (derived from the test's module path and
//! case index, stable across runs and platforms), and failing cases are
//! reported with their generated inputs but **not shrunk**.

pub mod test_runner {
    /// Runner configuration; only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to generate per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Deterministic per-case random source (splitmix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test's identity and case index; stable across
        /// runs so failures are reproducible.
        #[must_use]
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            (((u128::from(self.next_u64())) * u128::from(bound)) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;

    /// A generator of test values.
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between boxed strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T: Debug> Union<T> {
        /// Build from `(weight, strategy)` pairs; weights must not all
        /// be zero.
        #[must_use]
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Self { options, total }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.options {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64()
        }
    }

    /// Strategy form of [`Arbitrary`] (see [`any`]).
    #[derive(Clone, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Namespace mirror of the real crate's `prop` re-export module.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy yielding arbitrary booleans.
        #[derive(Clone, Copy, Debug)]
        pub struct BoolAny;

        /// Any boolean.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Half-open size range for generated collections.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec size range");
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: std::ops::RangeInclusive<usize>) -> Self {
                Self {
                    lo: *r.start(),
                    hi: *r.end() + 1,
                }
            }
        }

        /// Strategy for `Vec<S::Value>` with a length in a range.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// A vector whose elements come from `element` and whose length
        /// falls in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude::*`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each `fn name(bindings) { body }` item becomes
/// a `#[test]` running `cases` times with fresh generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                let mut __vals: Vec<(&'static str, String)> = Vec::new();
                $crate::__proptest_bind!(__rng, __vals, $($params)*);
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || -> ::std::ops::ControlFlow<()> {
                        $body
                        ::std::ops::ControlFlow::Continue(())
                    },
                ));
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed with inputs:",
                        __case + 1,
                        __cfg.cases,
                        stringify!($name),
                    );
                    for (__n, __v) in &__vals {
                        eprintln!("  {__n} = {__v}");
                    }
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $vals:ident,) => {};
    ($rng:ident, $vals:ident, mut $x:ident in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_bind!(@one mut, $rng, $vals, $x, $s);
        $crate::__proptest_bind!($rng, $vals, $($rest)*);
    };
    ($rng:ident, $vals:ident, mut $x:ident in $s:expr) => {
        $crate::__proptest_bind!(@one mut, $rng, $vals, $x, $s);
    };
    ($rng:ident, $vals:ident, $x:ident in $s:expr, $($rest:tt)*) => {
        $crate::__proptest_bind!(@one, $rng, $vals, $x, $s);
        $crate::__proptest_bind!($rng, $vals, $($rest)*);
    };
    ($rng:ident, $vals:ident, $x:ident in $s:expr) => {
        $crate::__proptest_bind!(@one, $rng, $vals, $x, $s);
    };
    ($rng:ident, $vals:ident, mut $x:ident: $t:ty, $($rest:tt)*) => {
        $crate::__proptest_bind!(@one mut, $rng, $vals, $x, $crate::arbitrary::any::<$t>());
        $crate::__proptest_bind!($rng, $vals, $($rest)*);
    };
    ($rng:ident, $vals:ident, mut $x:ident: $t:ty) => {
        $crate::__proptest_bind!(@one mut, $rng, $vals, $x, $crate::arbitrary::any::<$t>());
    };
    ($rng:ident, $vals:ident, $x:ident: $t:ty, $($rest:tt)*) => {
        $crate::__proptest_bind!(@one, $rng, $vals, $x, $crate::arbitrary::any::<$t>());
        $crate::__proptest_bind!($rng, $vals, $($rest)*);
    };
    ($rng:ident, $vals:ident, $x:ident: $t:ty) => {
        $crate::__proptest_bind!(@one, $rng, $vals, $x, $crate::arbitrary::any::<$t>());
    };
    (@one $($mutability:ident)?, $rng:ident, $vals:ident, $x:ident, $s:expr) => {
        let $($mutability)? $x = $crate::strategy::Strategy::generate(&$s, &mut $rng);
        $vals.push((stringify!($x), format!("{:?}", $x)));
    };
}

/// Weighted (`weight => strategy`) or unweighted choice between
/// strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((($weight) as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            panic!($($fmt)+);
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::ops::ControlFlow::Break(());
        }
    };
}
