//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored serde shim's [`Value`] tree to JSON text and
//! parses JSON text back, covering the workspace's usage: `to_string`,
//! `to_string_pretty`, `from_str`, and indexable [`Value`] documents.
//! Floats use Rust's shortest round-trippable formatting (`{:?}`), so
//! serialize → parse round-trips are bit-exact for finite values;
//! non-finite floats render as `null` like the real crate.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Number, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable type to a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize any supported type from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline(out, indent, level);
            out.push('}');
        }
    }
}

fn newline(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: &Number) {
    use std::fmt::Write as _;
    match *n {
        Number::U(v) => {
            let _ = write!(out, "{v}");
        }
        Number::I(v) => {
            let _ = write!(out, "{v}");
        }
        Number::F(v) if v.is_finite() => {
            let _ = write!(out, "{v:?}");
        }
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        let bad = |pos: usize| Error::custom(format!("unexpected character at offset {pos}"));
        match self.peek() {
            Some(b'n') => self
                .eat_keyword("null")
                .then_some(Value::Null)
                .ok_or_else(|| bad(self.pos)),
            Some(b't') => self
                .eat_keyword("true")
                .then_some(Value::Bool(true))
                .ok_or_else(|| bad(self.pos)),
            Some(b'f') => self
                .eat_keyword("false")
                .then_some(Value::Bool(false))
                .ok_or_else(|| bad(self.pos)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(bad(self.pos)),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        let number = if float {
            Number::F(
                text.parse::<f64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        } else if text.starts_with('-') {
            Number::I(
                text.parse::<i64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        } else {
            Number::U(
                text.parse::<u64>()
                    .map_err(|_| Error::custom(format!("invalid number `{text}`")))?,
            )
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let doc = Value::Object(vec![
            ("a".to_string(), Value::Number(Number::U(7))),
            ("b".to_string(), Value::Number(Number::F(0.1))),
            ("c".to_string(), Value::String("x\"y\\z\n".to_string())),
            (
                "d".to_string(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("e".to_string(), Value::Number(Number::I(-3))),
        ]);
        for render in [to_string(&doc).unwrap(), to_string_pretty(&doc).unwrap()] {
            let back: Value = from_str(&render).expect("parses");
            assert_eq!(back, doc, "render: {render}");
        }
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for v in [0.1, 1.0 / 3.0, 1e-12, 123_456.789, f64::MIN_POSITIVE] {
            let s = to_string(&v).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{s}");
        }
    }

    #[test]
    fn indexing_and_comparisons() {
        let v: Value = from_str(r#"{"m":{"n":50},"arr":[1,"two"]}"#).unwrap();
        assert_eq!(v["m"]["n"], 50);
        assert_eq!(v["arr"][1], "two");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{invalid").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }
}
