//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the small slice of serde that DReAMSim actually uses:
//! `#[derive(Serialize, Deserialize)]` on plain structs and enums (with
//! `#[serde(skip)]`/`#[serde(default)]` on fields), mediated through an
//! owned [`Value`] tree instead of serde's zero-copy visitor machinery.
//! The companion `serde_json` shim renders and parses that tree.
//!
//! Supported shapes (everything the workspace derives):
//! * structs with named fields,
//! * newtype and tuple structs,
//! * enums with unit, newtype, tuple, and struct variants
//!   (externally tagged, like real serde's default representation).

pub use serde_derive::{Deserialize, Serialize};

mod value;
pub use value::{Number, Value};

/// Serialization/deserialization error (message-only, like
/// `serde_json::Error` for the purposes of this workspace).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error carrying a human-readable message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Convert to the intermediate value tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the intermediate value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Field lookup helper used by the generated `Deserialize` impls.
#[doc(hidden)]
pub fn __find<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        "expected unsigned integer, got {}",
                        value.kind()
                    ))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {}", value.kind()))
                })?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Number(n) => Ok(n.as_f64()),
            // Real serde_json writes non-finite floats as `null`.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {}", value.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", value.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
