//! The owned JSON-like value tree shared by the `serde` and
//! `serde_json` shims.

/// A JSON number, kept in its original width so integer round-trips are
/// bit-exact (floats use Rust's shortest round-trippable formatting).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// This number as an `f64` (lossy for very large integers).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }
}

/// An owned JSON document tree. Object fields keep insertion order so
/// serialized output is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Human-readable kind name for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// `true` if this is `Value::Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean payload, if any.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if any.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(v)) => Some(*v),
            Value::Number(Number::I(v)) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The number as `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::U(v)) => i64::try_from(*v).ok(),
            Value::Number(Number::I(v)) => Some(*v),
            _ => None,
        }
    }

    /// The number as `f64`, if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Object field lookup; `None` for missing keys or non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| crate::__find(fields, key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                if *other >= 0 {
                    self.as_u64() == Some(*other as u64)
                } else {
                    self.as_i64() == Some(*other as i64)
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_int!(i8, i16, i32, i64, isize);

macro_rules! eq_uint {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_u64() == Some(*other as u64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
eq_uint!(u8, u16, u32, u64, usize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
