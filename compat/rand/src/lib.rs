//! Offline stand-in for the `rand` crate.
//!
//! The workspace uses `rand` only in tests, as an *independent* random
//! source to cross-check the from-scratch `dreamsim-rng` distributions
//! (and in the standalone bench crate). This shim supplies that role
//! with a splitmix64 generator — deliberately a different algorithm
//! from `dreamsim-rng`'s xoshiro256** so the cross-checks stay
//! meaningful — behind the familiar `RngCore`/`SeedableRng`/`Rng`
//! trait shapes of rand 0.8.

/// Minimal uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Distribution sampling sugar over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the "standard" distribution of `T` (unit interval
    /// for floats, full range for integers).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range on empty range");
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait SampleStandard: PartialOrd + Copy {
    /// Draw one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SampleStandard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types samplable by [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Draw one value from `[range.start, range.end)`.
    fn sample_range<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        let unit = f64::sample(rng);
        let v = range.start + unit * (range.end - range.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                let span = (range.end as i128 - range.start as i128) as u64;
                let off = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator (splitmix64; *not* the real
    /// crate's ChaCha12, but fit for statistical cross-checks).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        use rngs::StdRng;
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
            let f: f64 = a.gen();
            assert!((0.0..1.0).contains(&f));
            let r = a.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(r > 0.0 && r < 1.0);
            let n = a.gen_range(5u64..10);
            assert!((5..10).contains(&n));
            b.gen::<f64>();
            b.gen_range(f64::MIN_POSITIVE..1.0);
            b.gen_range(5u64..10);
        }
    }
}
