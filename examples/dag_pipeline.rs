//! Task-graph scheduling (the paper's future-work extension): a video
//! analytics pipeline of fork-join stages mapped onto partially
//! reconfigurable nodes.
//!
//! Stage 1 decodes frames (soft-core friendly), stage 2 fans out to
//! parallel filter workers (systolic-array configurations), stage 3
//! aggregates. Children release only when all parents complete.
//!
//! ```sh
//! cargo run --release --example dag_pipeline
//! ```

use dreamsim::engine::{ReconfigMode, SimParams, Simulation};
use dreamsim::model::{ConfigId, PreferredConfig, TaskState};
use dreamsim::sched::CaseStudyScheduler;
use dreamsim::workload::{DagSource, DagSpec, DagTask};

fn stage_task(required_time: u64, config: u32) -> DagTask {
    DagTask::new(required_time, PreferredConfig::Known(ConfigId(config)))
}

fn main() {
    // Build an 8-frame pipeline: decode -> 4 parallel filters -> merge,
    // chained per frame so merge(frame k) gates decode(frame k+1).
    let mut spec = DagSpec::new();
    let mut prev_merge: Option<usize> = None;
    let frames = 8;
    for _ in 0..frames {
        let decode = spec.add_task(stage_task(2_000, 0));
        if let Some(pm) = prev_merge {
            spec.add_edge(pm, decode).unwrap();
        }
        let mut filters = Vec::new();
        for f in 0..4u32 {
            let filt = spec.add_task(stage_task(5_000, 1 + f));
            spec.add_edge(decode, filt).unwrap();
            filters.push(filt);
        }
        let merge = spec.add_task(stage_task(1_000, 5));
        for f in filters {
            spec.add_edge(f, merge).unwrap();
        }
        prev_merge = Some(merge);
    }
    let levels = spec.validate().expect("pipeline is acyclic");
    let depth = levels.iter().max().copied().unwrap_or(0) + 1;
    let total = spec.len();
    println!("pipeline: {frames} frames, {total} tasks, {depth} topological levels");

    let mut params = SimParams::paper(16, total, ReconfigMode::Partial);
    params.seed = 7;
    // Small cluster: nodes big enough to co-host several filter configs.
    params.node_area = dreamsim::engine::params::Range::new(2000, 4000);
    params.config_area = dreamsim::engine::params::Range::new(300, 900);

    let source = DagSource::new(spec).expect("validated above");
    let result = Simulation::new(params, source, CaseStudyScheduler::new())
        .expect("params validate")
        .run();

    let m = &result.metrics;
    println!(
        "completed {}/{} tasks in {} ticks ({} discarded)",
        m.total_tasks_completed, total, m.total_simulation_time, m.total_discarded_tasks
    );
    println!(
        "placements: {} allocation, {} configuration, {} partial-config, {} reconfig",
        m.phases.allocation,
        m.phases.configuration,
        m.phases.partial_configuration,
        m.phases.partial_reconfiguration
    );

    // Per-frame makespan: the merge task of each frame is every 6th task.
    println!("\nframe completion times:");
    let mut completed: Vec<_> = result
        .tasks
        .iter()
        .filter(|t| t.state == TaskState::Completed)
        .collect();
    completed.sort_by_key(|t| t.completion_time);
    for (frame, chunk) in result.tasks.chunks(6).enumerate() {
        if let Some(merge) = chunk.last() {
            match merge.completion_time {
                Some(ct) => println!("  frame {frame}: merged at tick {ct}"),
                None => println!("  frame {frame}: did not finish"),
            }
        }
    }
}
