//! Quickstart: run one DReAMSim simulation with the paper's Table II
//! defaults and print the Table I metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dreamsim::engine::{ReconfigMode, SimParams, Simulation};
use dreamsim::sched::CaseStudyScheduler;
use dreamsim::workload::SyntheticSource;

fn main() {
    // 200 partially reconfigurable nodes, 5 000 synthetic tasks,
    // everything else per Table II of the paper.
    let params = SimParams::paper(200, 5_000, ReconfigMode::Partial).with_seed(2012);

    let source = SyntheticSource::from_params(&params);
    let policy = CaseStudyScheduler::new(); // Fig. 5 case-study algorithm

    let result = Simulation::new(params, source, policy)
        .expect("Table II defaults always validate")
        .run();

    let m = &result.metrics;
    println!(
        "DReAMSim quickstart — {} mode, {} nodes",
        m.mode, m.total_nodes
    );
    println!(
        "  tasks: {} generated, {} completed, {} discarded",
        m.total_tasks_generated, m.total_tasks_completed, m.total_discarded_tasks
    );
    println!(
        "  avg wasted area per task          : {:>10.2} area units",
        m.avg_wasted_area_per_task
    );
    println!(
        "  avg waiting time per task         : {:>10.1} ticks",
        m.avg_waiting_time_per_task
    );
    println!(
        "  avg reconfigurations per node     : {:>10.2}",
        m.avg_reconfig_count_per_node
    );
    println!(
        "  avg configuration time per task   : {:>10.3} ticks",
        m.avg_config_time_per_task
    );
    println!(
        "  avg scheduling steps per task     : {:>10.1}",
        m.avg_scheduling_steps_per_task
    );
    println!(
        "  total scheduler workload          : {:>10}",
        m.total_scheduler_workload
    );
    println!(
        "  total simulation time             : {:>10} ticks",
        m.total_simulation_time
    );

    // The structured report the output subsystem generates:
    println!("\nXML report (first lines):");
    for line in result.report.to_xml().lines().take(8) {
        println!("  {line}");
    }
}
