//! Workload traces: record a synthetic workload to the trace format,
//! replay it, and confirm the replay is bit-identical — the "real
//! workloads" input path of the framework.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use dreamsim::engine::sim::{SourceYield, TaskSource};
use dreamsim::engine::{ReconfigMode, SimParams, Simulation};
use dreamsim::rng::Rng;
use dreamsim::sched::CaseStudyScheduler;
use dreamsim::workload::{trace, SyntheticSource, TraceSource};

fn main() {
    let mut params = SimParams::paper(50, 800, ReconfigMode::Partial);
    params.seed = 99;

    // 1. Draw a synthetic workload up front and serialize it.
    let mut synth = SyntheticSource::from_params(&params);
    let mut rng = Rng::seed_from(1234);
    let mut specs = Vec::new();
    while specs.len() < params.total_tasks {
        match synth.next_task(0, &mut rng) {
            SourceYield::Task(s) => specs.push(s),
            _ => break,
        }
    }
    let text = trace::write_trace(&specs);
    println!("trace: {} tasks, {} bytes", specs.len(), text.len());
    println!("first lines:");
    for line in text.lines().take(5) {
        println!("  {line}");
    }

    // 2. Replay it twice; identical traces must give identical metrics.
    let run = |text: &str| {
        let source = TraceSource::from_text(text).expect("trace round-trips");
        Simulation::new(params.clone(), source, CaseStudyScheduler::new())
            .expect("params validate")
            .run()
            .metrics
    };
    let a = run(&text);
    let b = run(&text);
    assert_eq!(a, b, "replay must be deterministic");

    println!(
        "\nreplayed {} tasks deterministically:",
        a.total_tasks_generated
    );
    println!(
        "  completed {} | discarded {}",
        a.total_tasks_completed, a.total_discarded_tasks
    );
    println!(
        "  avg waiting time {:.1} ticks",
        a.avg_waiting_time_per_task
    );
    println!(
        "  avg wasted area {:.2} units/task",
        a.avg_wasted_area_per_task
    );

    // 3. The parsed trace also round-trips through text exactly.
    let reparsed = trace::parse_trace(&text).expect("parses");
    assert_eq!(reparsed, specs);
    println!("\ntrace text round-trip: OK ({} tasks)", reparsed.len());
}
