//! The paper's headline experiment: the same workload scheduled with and
//! without partial reconfiguration, side by side (Section VI).
//!
//! Expected directions (every figure of the paper):
//! partial reconfiguration *lowers* wasted area, waiting time,
//! scheduling steps, and scheduler workload, at the price of *more*
//! reconfigurations per node and configuration time per task.
//!
//! ```sh
//! cargo run --release --example full_vs_partial
//! ```

use dreamsim::engine::{Metrics, ReconfigMode, SimParams};
use dreamsim::sweep::runner::{run_point, SweepPoint};

fn row(name: &str, full: f64, partial: f64, lower_is_partial_win: bool) {
    let winner = match (partial < full, lower_is_partial_win) {
        (true, true) | (false, false) => "partial ✓ (expected)",
        _ if (partial - full).abs() < f64::EPSILON => "tie",
        _ => "full (unexpected)",
    };
    println!("  {name:<38} {full:>14.2} {partial:>14.2}   {winner}");
}

fn run(mode: ReconfigMode, nodes: usize, tasks: usize, seed: u64) -> Metrics {
    let mut params = SimParams::paper(nodes, tasks, mode);
    params.seed = seed;
    run_point(&SweepPoint::new(mode.label(), params)).metrics
}

fn main() {
    let (nodes, tasks, seed) = (200, 5_000, 42);
    println!("Scheduling {tasks} tasks on {nodes} nodes (seed {seed})\n");
    let full = run(ReconfigMode::Full, nodes, tasks, seed);
    let partial = run(ReconfigMode::Partial, nodes, tasks, seed);

    println!("  metric {:>45} {:>14}", "full", "partial");
    row(
        "avg wasted area per task",
        full.avg_wasted_area_per_task,
        partial.avg_wasted_area_per_task,
        true,
    );
    row(
        "avg waiting time per task",
        full.avg_waiting_time_per_task,
        partial.avg_waiting_time_per_task,
        true,
    );
    row(
        "avg scheduling steps per task",
        full.avg_scheduling_steps_per_task,
        partial.avg_scheduling_steps_per_task,
        true,
    );
    row(
        "total scheduler workload",
        full.total_scheduler_workload as f64,
        partial.total_scheduler_workload as f64,
        true,
    );
    row(
        "avg reconfiguration count per node",
        full.avg_reconfig_count_per_node,
        partial.avg_reconfig_count_per_node,
        false, // partial is expected to reconfigure MORE
    );
    row(
        "avg configuration time per task",
        full.avg_config_time_per_task,
        partial.avg_config_time_per_task,
        false,
    );

    println!("\nPlacement phase mix:");
    for (label, m) in [("full", &full), ("partial", &partial)] {
        let p = &m.phases;
        println!(
            "  {label:<8} allocation {:>6}  configuration {:>6}  partial-config {:>6}  reconfig {:>6}  resumed {:>6}",
            p.allocation, p.configuration, p.partial_configuration, p.partial_reconfiguration, p.resumed
        );
    }
    println!(
        "\ncompleted: full {} / partial {}   discarded: full {} / partial {}",
        full.total_tasks_completed,
        partial.total_tasks_completed,
        full.total_discarded_tasks,
        partial.total_discarded_tasks
    );
}
