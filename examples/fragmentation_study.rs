//! Extension study: how optimistic is the paper's scalar area model?
//!
//! Runs the same workload under the scalar model (Eq. 4) and under
//! contiguous 1-D placement (configurations must fit a contiguous gap of
//! fabric columns), and also with capability constraints (configurations
//! demanding DSP slices, embedded memory, … of their host node).
//!
//! ```sh
//! cargo run --release --example fragmentation_study
//! ```

use dreamsim::engine::{Metrics, PlacementModel, ReconfigMode, SimParams};
use dreamsim::sweep::runner::{run_point, SweepPoint};

fn run(label: &str, params: SimParams) -> (String, Metrics) {
    (
        label.to_string(),
        run_point(&SweepPoint::new(label, params)).metrics,
    )
}

fn main() {
    let base = {
        let mut p = SimParams::paper(100, 3_000, ReconfigMode::Partial);
        p.seed = 31;
        p
    };

    let mut rows = Vec::new();
    rows.push(run("scalar (paper)", base.clone()));

    let mut contiguous = base.clone();
    contiguous.placement = PlacementModel::Contiguous;
    rows.push(run("contiguous", contiguous));

    let mut caps = base.clone();
    caps.capability_requirement_prob = 0.25;
    rows.push(run("caps p=0.25", caps));

    let mut both = base.clone();
    both.placement = PlacementModel::Contiguous;
    both.capability_requirement_prob = 0.25;
    rows.push(run("contiguous+caps", both));

    println!(
        "{:<16} {:>9} {:>9} {:>12} {:>10} {:>14} {:>8}",
        "model", "completed", "discarded", "avg wait", "wait p95", "reconf/node", "frag"
    );
    for (label, m) in &rows {
        println!(
            "{label:<16} {:>9} {:>9} {:>12.0} {:>10} {:>14.2} {:>8.3}",
            m.total_tasks_completed,
            m.total_discarded_tasks,
            m.avg_waiting_time_per_task,
            m.wait_p95,
            m.avg_reconfig_count_per_node,
            m.mean_fragmentation_end,
        );
    }

    println!(
        "\nContiguity and capability constraints can only shrink the feasible\n\
         placement set, so completions should not rise and waits should not\n\
         fall relative to the scalar baseline — the gap quantifies how much\n\
         the paper's scalar area model overestimates schedulable capacity."
    );
}
