//! Failure injection + load-balance reporting (extensions beyond the
//! paper's failure-free evaluation): nodes fail with a configurable
//! MTBF, killing their tasks, and come back blank after repair.
//!
//! ```sh
//! cargo run --release --example failure_injection
//! ```

use dreamsim::engine::{ReconfigMode, SimParams, Simulation};
use dreamsim::sched::{CaseStudyScheduler, LoadBalancer};
use dreamsim::workload::SyntheticSource;

fn main() {
    println!(
        "{:>12} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "MTBF", "failures", "killed", "completed", "discarded", "avg wait"
    );
    for mtbf in [u64::MAX, 500_000, 100_000, 20_000] {
        let mut params = SimParams::paper(100, 3_000, ReconfigMode::Partial);
        params.seed = 11;
        if mtbf != u64::MAX {
            params.node_mtbf = Some(mtbf);
            params.node_mttr = 5_000;
        }
        let source = SyntheticSource::from_params(&params);
        let result = Simulation::new(params, source, CaseStudyScheduler::new())
            .expect("params validate")
            .run();
        let m = &result.metrics;
        let label = if mtbf == u64::MAX {
            "none".to_string()
        } else {
            mtbf.to_string()
        };
        println!(
            "{label:>12} {:>10} {:>10} {:>10} {:>12} {:>10.0}",
            m.node_failures,
            m.failure_killed,
            m.total_tasks_completed,
            m.total_discarded_tasks,
            m.avg_waiting_time_per_task
        );
    }

    // Load-distribution snapshot mid-run, via the monitoring hook: build
    // a small simulation, run it, and report the final (drained) state
    // plus a mid-simulation style report from a fresh resource manager.
    let mut params = SimParams::paper(40, 400, ReconfigMode::Partial);
    params.seed = 3;
    let source = SyntheticSource::from_params(&params);
    let sim = Simulation::new(params, source, CaseStudyScheduler::new()).unwrap();
    let report = LoadBalancer::new().report(sim.resources());
    println!(
        "\ninitial load report: mean load {:.2}, CV {:.2}, Gini {:.2}, busy {:.0}%",
        report.mean_load,
        report.load_cv,
        report.load_gini,
        report.busy_fraction * 100.0
    );
    let result = sim.run();
    println!(
        "after run: {} tasks completed, {} node failures",
        result.metrics.total_tasks_completed, result.metrics.node_failures
    );
}
