//! # DReAMSim
//!
//! Facade crate for the DReAMSim workspace: a simulation framework for
//! task scheduling in large-scale distributed systems with partially
//! reconfigurable processing elements, reproducing Nadeem et al.,
//! IPDPSW 2012.
//!
//! Re-exports every sub-crate under one roof so applications can depend
//! on `dreamsim` alone. See the individual crates for the deep API docs:
//!
//! * [`rng`] — random number substrate (Ziggurat, Marsaglia–Tsang gamma).
//! * [`model`] — nodes, configurations, tasks, dynamic data structures.
//! * [`engine`] — discrete-event core, statistics, reports.
//! * [`sched`] — scheduling policies including the paper's case study.
//! * [`workload`] — synthetic/trace/DAG workloads.
//! * [`sweep`] — parallel experiment harness and paper figures.

pub use dreamsim_engine as engine;
pub use dreamsim_model as model;
pub use dreamsim_rng as rng;
pub use dreamsim_sched as sched;
pub use dreamsim_sweep as sweep;
pub use dreamsim_workload as workload;

pub use dreamsim_engine::params::{ReconfigMode, SimParams};
pub use dreamsim_engine::sim::Simulation;
pub use dreamsim_rng::Rng;
